(* Equivalence checking by simulation.  Designs are compared on their
   shared port interface: exhaustively when the input count is small,
   with random vectors otherwise; sequential designs are compared in
   lock-step from the reset state over random stimulus. *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types

type result =
  | Equivalent
  | Mismatch of {
      inputs : (string * bool) list;
      ports : string list;
      cycle : int option;
    }

let input_ports d =
  List.filter_map
    (fun (p, dir, _) -> if dir = T.Input then Some p else None)
    (D.ports d)

let output_ports d =
  List.filter_map
    (fun (p, dir, _) -> if dir = T.Output then Some p else None)
    (D.ports d)

let vector_of_int names v =
  List.mapi (fun i p -> (p, v land (1 lsl i) <> 0)) names

let random_vector rng names =
  List.map (fun p -> (p, Random.State.bool rng)) names

(* All output ports whose values differ (a port missing on one side
   counts as differing). *)
let compare_outputs outs1 outs2 =
  List.rev
    (List.fold_left
       (fun acc (p, v) ->
         match List.assoc_opt p outs2 with
         | Some v2 when v2 = v -> acc
         | Some _ | None -> p :: acc)
       [] outs1)

(* Combinational equivalence; [max_exhaustive] bounds the exhaustive
   sweep (default 2^12 vectors), beyond which [vectors] random vectors
   are used. *)
let combinational ?(max_exhaustive = 12) ?(vectors = 512) ?(seed = 0x5eed)
    env1 d1 env2 d2 =
  let ins = input_ports d1 in
  let ins2 = input_ports d2 in
  if List.sort compare ins <> List.sort compare ins2 then
    invalid_arg "Equiv.combinational: input port mismatch";
  if List.sort compare (output_ports d1) <> List.sort compare (output_ports d2)
  then invalid_arg "Equiv.combinational: output port mismatch";
  let s1 = Simulator.create env1 d1 and s2 = Simulator.create env2 d2 in
  let check inputs =
    let o1 = Simulator.outputs s1 inputs and o2 = Simulator.outputs s2 inputs in
    match compare_outputs o1 o2 with
    | [] -> None
    | ports -> Some (Mismatch { inputs; ports; cycle = None })
  in
  let n = List.length ins in
  let trial_inputs =
    if n <= max_exhaustive then
      List.init (1 lsl n) (fun v -> vector_of_int ins v)
    else
      let rng = Random.State.make [| seed |] in
      List.init vectors (fun _ -> random_vector rng ins)
  in
  let rec go = function
    | [] -> Equivalent
    | inputs :: rest -> (
        match check inputs with None -> go rest | Some m -> m)
  in
  go trial_inputs

(* Sequential equivalence over [cycles] random input vectors applied in
   lock-step from reset, comparing outputs before each edge. *)
let sequential ?(cycles = 256) ?(runs = 8) ?(seed = 0x5eed) env1 d1 env2 d2 =
  let ins = input_ports d1 in
  if List.sort compare ins <> List.sort compare (input_ports d2) then
    invalid_arg "Equiv.sequential: input port mismatch";
  let rng = Random.State.make [| seed |] in
  let rec run r =
    if r >= runs then Equivalent
    else begin
      let s1 = Simulator.create env1 d1 and s2 = Simulator.create env2 d2 in
      Simulator.reset s1;
      Simulator.reset s2;
      let rec cycle c =
        if c >= cycles then None
        else
          let inputs = random_vector rng ins in
          let o1 = Simulator.outputs s1 inputs
          and o2 = Simulator.outputs s2 inputs in
          match compare_outputs o1 o2 with
          | _ :: _ as ports -> Some (Mismatch { inputs; ports; cycle = Some c })
          | [] ->
              Simulator.step s1 inputs;
              Simulator.step s2 inputs;
              cycle (c + 1)
      in
      match cycle 0 with None -> run (r + 1) | Some m -> m
    end
  in
  run 0

let is_equivalent = function Equivalent -> true | Mismatch _ -> false

let pp_result ppf = function
  | Equivalent -> Format.fprintf ppf "equivalent"
  | Mismatch { inputs; ports; cycle } ->
      let where =
        match cycle with
        | None -> ""
        | Some c -> Printf.sprintf " at cycle %d" c
      in
      Format.fprintf ppf "mismatch on %s%s under {%s}"
        (String.concat ", " ports) where
        (String.concat "; "
           (List.map (fun (p, v) -> Printf.sprintf "%s=%b" p v) inputs))
