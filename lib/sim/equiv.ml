(* Equivalence checking by simulation.  Designs are compared on their
   shared port interface: exhaustively when the input count is small,
   with random vectors otherwise; sequential designs are compared in
   lock-step from the reset state over random stimulus.

   Both checks run on the packed engine: each settle evaluates
   [Simulator.lanes] vectors at once, so a 2^12 exhaustive sweep costs
   ~65 packed passes instead of 4096 scalar ones.  Vectors are
   streamed chunk by chunk — nothing proportional to 2^n is ever
   materialized — and the exhaustive bound is clamped below the word
   size so [1 lsl n] cannot overflow.

   Port interfaces are validated symmetrically on both input and
   output sets, for sequential designs too: a candidate that drops or
   renames an output port is rejected up front rather than silently
   compared on the surviving ports. *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types

type result =
  | Equivalent
  | Mismatch of {
      inputs : (string * bool) list;
      ports : string list;
      cycle : int option;
    }

let input_ports d =
  List.filter_map
    (fun (p, dir, _) -> if dir = T.Input then Some p else None)
    (D.ports d)

let output_ports d =
  List.filter_map
    (fun (p, dir, _) -> if dir = T.Output then Some p else None)
    (D.ports d)

let validate_ports fname d1 d2 =
  if List.sort compare (input_ports d1) <> List.sort compare (input_ports d2)
  then invalid_arg (fname ^ ": input port mismatch");
  if List.sort compare (output_ports d1) <> List.sort compare (output_ports d2)
  then invalid_arg (fname ^ ": output port mismatch")

let lanes = Simulator.lanes
let lane_mask n = if n >= lanes then -1 else (1 lsl n) - 1

let lowest_bit w =
  let rec go i = if w land (1 lsl i) <> 0 then i else go (i + 1) in
  go 0

(* Per-port difference words between two packed output assignments,
   restricted to [mask]'s lanes.  A port present on only one side
   differs on every lane (unreachable after [validate_ports], but kept
   symmetric for safety). *)
let packed_diffs o1 o2 mask =
  let ports =
    List.sort_uniq compare (List.map fst o1 @ List.map fst o2)
  in
  List.filter_map
    (fun p ->
      let d =
        match (List.assoc_opt p o1, List.assoc_opt p o2) with
        | Some w1, Some w2 -> (w1 lxor w2) land mask
        | Some _, None | None, Some _ -> mask
        | None, None -> 0
      in
      if d = 0 then None else Some (p, d))
    ports

(* Extract the first mismatching lane as a scalar counterexample. *)
let mismatch_of_diffs ~cycle in_words diffs =
  let all = List.fold_left (fun acc (_, d) -> acc lor d) 0 diffs in
  let l = lowest_bit all in
  let bit w = w land (1 lsl l) <> 0 in
  Mismatch
    {
      inputs = List.map (fun (p, w) -> (p, bit w)) in_words;
      ports = List.filter_map (fun (p, d) -> if bit d then Some p else None) diffs;
      cycle;
    }

let check_chunk ~cycle s1 s2 in_words mask =
  let o1 = Simulator.outputs_packed s1 in_words
  and o2 = Simulator.outputs_packed s2 in_words in
  match packed_diffs o1 o2 mask with
  | [] -> None
  | diffs -> Some (mismatch_of_diffs ~cycle in_words diffs)

(* Input words for lanes [v0 .. v0+chunk-1] of the exhaustive order:
   lane [l]'s value of input [i] is bit [i] of [v0 + l]. *)
let exhaustive_words ins v0 chunk =
  List.mapi
    (fun i p ->
      let w = ref 0 in
      for l = 0 to chunk - 1 do
        if (v0 + l) lsr i land 1 <> 0 then w := !w lor (1 lsl l)
      done;
      (p, !w))
    ins

(* Random input words drawn lane-major then input-minor, matching the
   draw order of one scalar vector per lane. *)
let random_words rng ins chunk =
  let ws = Array.make (List.length ins) 0 in
  for l = 0 to chunk - 1 do
    List.iteri
      (fun i _ -> if Random.State.bool rng then ws.(i) <- ws.(i) lor (1 lsl l))
      ins
  done;
  List.mapi (fun i p -> (p, ws.(i))) ins

(* Combinational equivalence; [max_exhaustive] bounds the exhaustive
   sweep (default 2^12 vectors, clamped below the word size), beyond
   which [vectors] random vectors are used. *)
let combinational ?(max_exhaustive = 12) ?(vectors = 512) ?(seed = 0x5eed)
    env1 d1 env2 d2 =
  validate_ports "Equiv.combinational" d1 d2;
  let ins = input_ports d1 in
  let s1 = Simulator.create env1 d1 and s2 = Simulator.create env2 d2 in
  let n = List.length ins in
  (* [1 lsl n] must stay a positive [int]; beyond that an exhaustive
     sweep is unrepresentable, so fall through to random vectors. *)
  let max_exhaustive = min max_exhaustive (Sys.int_size - 2) in
  if n <= max_exhaustive then begin
    let total = 1 lsl n in
    let rec sweep v0 =
      if v0 >= total then Equivalent
      else
        let chunk = min lanes (total - v0) in
        let in_words = exhaustive_words ins v0 chunk in
        match check_chunk ~cycle:None s1 s2 in_words (lane_mask chunk) with
        | Some m -> m
        | None -> sweep (v0 + lanes)
    in
    sweep 0
  end
  else begin
    let rng = Random.State.make [| seed |] in
    let rec sweep done_ =
      if done_ >= vectors then Equivalent
      else
        let chunk = min lanes (vectors - done_) in
        let in_words = random_words rng ins chunk in
        match check_chunk ~cycle:None s1 s2 in_words (lane_mask chunk) with
        | Some m -> m
        | None -> sweep (done_ + chunk)
    in
    sweep 0
  end

(* Sequential equivalence over [cycles] random input vectors applied in
   lock-step from reset, comparing outputs before each edge.  Runs are
   packed into lanes: one chunk of up to [lanes] independent runs
   advances cycle by cycle in a single pair of simulators. *)
let sequential ?(cycles = 256) ?(runs = 8) ?(seed = 0x5eed) env1 d1 env2 d2 =
  validate_ports "Equiv.sequential" d1 d2;
  let ins = input_ports d1 in
  let rng = Random.State.make [| seed |] in
  let rec run_chunk r0 =
    if r0 >= runs then Equivalent
    else begin
      let chunk = min lanes (runs - r0) in
      let mask = lane_mask chunk in
      let s1 = Simulator.create env1 d1 and s2 = Simulator.create env2 d2 in
      Simulator.reset s1;
      Simulator.reset s2;
      let rec cycle c =
        if c >= cycles then None
        else
          let in_words = random_words rng ins chunk in
          match check_chunk ~cycle:(Some c) s1 s2 in_words mask with
          | Some m -> Some m
          | None ->
              Simulator.step_packed s1 in_words;
              Simulator.step_packed s2 in_words;
              cycle (c + 1)
      in
      match cycle 0 with None -> run_chunk (r0 + chunk) | Some m -> m
    end
  in
  run_chunk 0

let is_equivalent = function Equivalent -> true | Mismatch _ -> false

let pp_result ppf = function
  | Equivalent -> Format.fprintf ppf "equivalent"
  | Mismatch { inputs; ports; cycle } ->
      let where =
        match cycle with
        | None -> ""
        | Some c -> Printf.sprintf " at cycle %d" c
      in
      Format.fprintf ppf "mismatch on %s%s under {%s}"
        (String.concat ", " ports) where
        (String.concat "; "
           (List.map (fun (p, v) -> Printf.sprintf "%s=%b" p v) inputs))
