(** The MILO technology mapper: lookup-table conversion of generic-macro
    designs into technology-specific ones (Section 6.2); gates the
    technology lacks are rebuilt from its own gate set. *)

module D = Milo_netlist.Design

type unmappable = {
  um_design : string;  (** design being mapped *)
  um_comp : string option;  (** offending component, if one *)
  um_reason : string;
}
(** Typed mapping failure: names the offending object so flow
    checkpoints and CLI diagnostics can report it precisely. *)

exception Unmappable of unmappable

val unmappable_to_string : unmappable -> string

type target = {
  tech : Milo_library.Technology.t;
  prefix : string;
  set : Milo_compilers.Gate_comp.gate_set;
}

val make_target : prefix:string -> Milo_library.Technology.t -> target
val ecl_target : unit -> target
val cmos_target : unit -> target

val parse_gate_name : string -> (Milo_netlist.Types.gate_fn * int) option

val map_design : ?keep_instances:bool -> target -> D.t -> D.t
(** Map a generic design onto the target technology (fresh copy).
    @raise Unmappable on micro components, unknown macros, or hierarchy
    unless [keep_instances] is set. *)
