(* The technology mapper: converts a generic-macro design into one using
   components from a technology-specific library, by lookup table
   (Section 6.2).  Entries are name-for-name replacements where the
   technology has a matching macro; gates the technology lacks are
   rebuilt as trees from its own gate set (the per-technology design
   compilers the paper describes: ECL compilers favour OR/NOR, CMOS
   compilers NAND/AND). *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types
module Gate_comp = Milo_compilers.Gate_comp

(* Typed mapping failure: names the design and component that could not
   be mapped, so flow checkpoints and CLI diagnostics can point at the
   offending object instead of parsing a message string. *)
type unmappable = {
  um_design : string;
  um_comp : string option;
  um_reason : string;
}

exception Unmappable of unmappable

let unmappable_to_string u =
  Printf.sprintf "%s%s: %s" u.um_design
    (match u.um_comp with Some c -> "/" ^ c | None -> "")
    u.um_reason

let () =
  Printexc.register_printer (function
    | Unmappable u -> Some ("Table_map.Unmappable: " ^ unmappable_to_string u)
    | _ -> None)

let unmappable ~design ?comp fmt =
  Printf.ksprintf
    (fun um_reason ->
      raise (Unmappable { um_design = design; um_comp = comp; um_reason }))
    fmt

type target = {
  tech : Milo_library.Technology.t;
  prefix : string;
  set : Gate_comp.gate_set;
}

let make_target ~prefix tech =
  { tech; prefix; set = Gate_comp.named_set ~prefix tech }

let ecl_target () = make_target ~prefix:"E_" (Milo_library.Ecl.get ())
let cmos_target () = make_target ~prefix:"C_" (Milo_library.Cmos.get ())

(* Parse a generic gate-macro name into its function and arity. *)
let parse_gate_name name : (T.gate_fn * int) option =
  let try_fn fn =
    let fname = T.gate_fn_name fn in
    let fl = String.length fname in
    if String.length name > fl && String.sub name 0 fl = fname then
      Option.map (fun n -> (fn, n))
        (int_of_string_opt (String.sub name fl (String.length name - fl)))
    else None
  in
  match name with
  | "INV" -> Some (T.Inv, 1)
  | "BUF" -> Some (T.Buf, 1)
  | _ ->
      (* Longest names first so NAND is not parsed as AND. *)
      List.find_map try_fn [ T.Nand; T.Nor; T.Xnor; T.Xor; T.And; T.Or ]

(* Replace one generic gate component by a tree of technology gates. *)
let rebuild_gate target d (c : D.comp) fn n =
  let ins =
    List.init n (fun i ->
        match D.connection d c.D.id (Printf.sprintf "A%d" i) with
        | Some nid -> nid
        | None ->
            unmappable ~design:(D.name d) ~comp:c.D.cname
              "gate input A%d unconnected" i)
  in
  let out =
    match D.connection d c.D.id "Y" with
    | Some nid -> nid
    | None ->
        unmappable ~design:(D.name d) ~comp:c.D.cname "gate output unconnected"
  in
  D.remove_comp d c.D.id;
  let built = Gate_comp.build d target.set fn ins in
  (* Merge the built net into the original output net. *)
  let pins = (D.net d built).D.npins in
  List.iter (fun (cid, pin) -> D.connect d cid pin out) pins;
  if (D.net d built).D.npins = [] && (D.net d built).D.nport = None then
    D.remove_net d built

(* DEC2x4E: decoder plus enable ANDs in technologies without an
   enable-decoder macro. *)
let rebuild_dec2x4e target d (c : D.comp) =
  let conn pin =
    match D.connection d c.D.id pin with
    | Some nid -> nid
    | None ->
        unmappable ~design:(D.name d) ~comp:c.D.cname
          "decoder pin %s unconnected" pin
  in
  let a0 = conn "A0" and a1 = conn "A1" and en = conn "EN" in
  let youts = List.init 4 (fun j -> D.connection d c.D.id (Printf.sprintf "Y%d" j)) in
  D.remove_comp d c.D.id;
  let dec = D.add_comp d (T.Macro (target.prefix ^ "DEC2x4")) in
  D.connect d dec "A0" a0;
  D.connect d dec "A1" a1;
  List.iteri
    (fun j y ->
      match y with
      | None -> ()
      | Some ynet ->
          let hot = D.new_net d in
          D.connect d dec (Printf.sprintf "Y%d" j) hot;
          let anded = Gate_comp.build d target.set T.And [ hot; en ] in
          let pins = (D.net d anded).D.npins in
          List.iter (fun (cid, pin) -> D.connect d cid pin ynet) pins;
          if (D.net d anded).D.npins = [] then D.remove_net d anded)
    youts

(* Map a generic design (no micro components) onto the target
   technology.  Returns a fresh design.  With [keep_instances],
   hierarchical Instance references are left untouched (the hierarchical
   logic optimizer maps level by level). *)
let map_design ?(keep_instances = false) target design =
  let d = D.copy design in
  List.iter
    (fun (c : D.comp) ->
      match c.D.kind with
      | T.Macro g ->
          let candidate = target.prefix ^ g in
          if Milo_library.Technology.mem target.tech candidate then
            D.set_kind d c.D.id (T.Macro candidate)
          else begin
            match parse_gate_name g with
            | Some (fn, n) -> rebuild_gate target d c fn n
            | None ->
                if g = "DEC2x4E" then rebuild_dec2x4e target d c
                else
                  unmappable ~design:(D.name d) ~comp:c.D.cname
                    "no %s mapping for generic macro %s"
                    (Milo_library.Technology.name target.tech)
                    g
          end
      | T.Constant lvl ->
          let mname =
            target.prefix ^ (match lvl with T.Vdd -> "VDD" | T.Vss -> "VSS")
          in
          D.set_kind d c.D.id (T.Macro mname)
      | T.Instance i ->
          if not keep_instances then
            unmappable ~design:(D.name d) ~comp:c.D.cname
              "hierarchical instance %s: flatten before mapping" i
      | T.Gate _ | T.Multiplexor _ | T.Decoder _ | T.Comparator _
      | T.Logic_unit _ | T.Arith_unit _ | T.Register _ | T.Counter _ ->
          unmappable ~design:(D.name d) ~comp:c.D.cname
            "micro component: compile before mapping")
    (D.comps d);
  d
