(** Analysis-powered lint passes: diagnostics derived from abstract
    interpretation facts, reported through the same structured
    [Milo_lint.Diagnostic] currency as the structural passes (which
    cannot see them — they need a fixpoint, not a scan). *)

module Diagnostic = Milo_lint.Diagnostic

val constant_outputs : Absint.t -> Diagnostic.t list
(** Output ports proved constant ([absint-constant-output]). *)

val dead_macros : Absint.t -> Diagnostic.t list
(** Components no output port structurally depends on
    ([absint-dead-macro]). *)

val unobservable_cones : Absint.t -> Diagnostic.t list
(** Live components whose outputs are all masked
    ([absint-unobservable-cone]). *)

val stuck_inputs : Absint.t -> Diagnostic.t list
(** Input pins fed by proved-constant nets ([absint-stuck-input]). *)

val floating_live_inputs : Absint.t -> Diagnostic.t list
(** Unconnected input pins of live components
    ([absint-floating-input]). *)

val multi_driven_live : Absint.t -> Diagnostic.t list
(** Multi-driven nets, severity raised to [Error] when observable
    ([absint-multi-driven]). *)

val all : Absint.t -> Diagnostic.t list
(** Every pass, sorted by severity. *)
