(** Static rule certification: prove critic rules sound offline so the
    dynamic rule guard can skip them.

    Each rule is exercised over a built-in witness corpus (plus any
    caller-supplied designs) mapped onto the target technology.  Every
    site the rule matches is applied transactionally and its effect
    checked two ways, strongest first:

    - {e cone-local}: the truth vectors of the site's output nets over
      their fan-in cone leaves, before vs after, enumerated
      exhaustively up to {!exhaustive_leaves} leaves (seeded random
      vectors up to {!random_leaves});
    - {e whole-design}: when no cone is verifiable (sequential sites,
      vanished nets), the pre-apply design is compared against the
      post-apply one with [Milo_guard.Guard.check].

    A rule whose every verified site was proved exhaustively is
    [Certified]; one with at least one verified site, but only random
    evidence somewhere, is [Probabilistic]; a rule that matched
    nothing verifiable is [Uncertified]; and {e any} divergence makes
    it [Refused].  Only [Certified] rules may skip the dynamic guard
    ([Milo_rules.Engine.set_certified]); the stage-boundary checks
    remain as a backstop — a certificate is empirical evidence over
    the corpus, not a proof over every context, which is exactly why
    the flow keeps stage guards on.

    Certificates are digest-signed and cached per (rule, technology)
    pair; a tampered certificate fails {!valid} and is recomputed. *)

module D = Milo_netlist.Design

type verdict = Certified | Probabilistic | Uncertified | Refused

val verdict_name : verdict -> string

type certificate = {
  cert_rule : string;
  cert_class : string;
  cert_tech : string;
  cert_verdict : verdict;
  cert_sites : int;  (** sites exercised across the corpus *)
  cert_exhaustive : int;  (** sites proved by exhaustive enumeration *)
  cert_random : int;  (** sites checked by random vectors only *)
  cert_detail : string;  (** refusal divergence, or "" *)
  cert_digest : string;  (** hex digest binding all fields *)
}

val valid : certificate -> bool
(** Does the signature match the payload? *)

val exhaustive_leaves : int
(** Cone size up to which enumeration is exhaustive (12). *)

val random_leaves : int
(** Cone size up to which random vectors are still tried (16). *)

(** {2 Certificate cache} *)

type cache

val create_cache : unit -> cache
(** A private cache (per-instance state; nothing shared). *)

val shared_cache : cache
(** The default process-wide cache the flow uses. *)

val reset_cache : cache -> unit

val lookup : ?cache:cache -> tech:string -> string -> certificate option
(** Cached certificate for (rule, technology), if any and valid. *)

(** {2 Certification} *)

val default_corpus : Milo_techmap.Table_map.target -> D.t list
(** The built-in witness designs, mapped onto the target: gate chains,
    shared/duplicated logic, constant ties, masked (unobservable)
    cones, a mux→flip-flop pair, a MUXFF with a mux on its data leg,
    ripple and lookahead adders, and a high-power variant component
    when the technology has one. *)

val certify_rules :
  ?cache:cache ->
  ?witnesses:D.t list ->
  ?max_sites:int ->
  Milo_techmap.Table_map.target ->
  Milo_rules.Rule.t list ->
  certificate list
(** Certify each rule over {!default_corpus} plus [witnesses] (already
    mapped onto the same target), reusing cached certificates.
    [max_sites] caps the sites exercised per rule (default 12). *)

val certified_names : certificate list -> string list
(** Names of the [Certified] rules — what
    [Milo_rules.Engine.set_certified] expects. *)

val cert_to_json : certificate -> string
val pp_certificate : Format.formatter -> certificate -> unit
