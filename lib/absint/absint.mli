(** Abstract interpretation over the mapped netlist IR.

    A worklist fixpoint over the ternary domain [{0, 1, ⊤}] computes
    per-net constant facts, plus three structural/semantic summaries
    derived from them: liveness (backward reachability from output
    ports), observability (backward don't-care analysis: can a net's
    value ever influence an observable output?) and stuck-at inputs.

    Soundness contract: every fact is an over-approximation of the
    behaviours [Milo_sim.Simulator] can exhibit.  A net reported
    constant by {!net_const} settles to that value under {e every}
    input assignment (sequential state held at its reset value of
    zero, matching the simulator); a net reported unobservable cannot
    change any output port by toggling.  Undriven nets read as [false]
    in the simulator, so they are constant [Zero] here, and nets with
    multiple drivers are poisoned to [Top] forever.

    The analysis is incremental in the same shape as
    [Milo_measure.Measure]: feed the change-log entries of committed
    edits to {!advance} and queries re-run the fixpoint only over the
    forward closure of the touched nets. *)

module D = Milo_netlist.Design

(** Abstract value of a net: constant low, constant high, or unknown. *)
type value = Zero | One | Top

val value_name : value -> string

type env = string -> Milo_library.Macro.t option
(** Macro lookup for [Macro] component kinds. *)

val env_of_techs : Milo_library.Technology.t list -> env
(** First match wins, as in [Milo_sim.Simulator.env_of_techs]. *)

type t

val analyze : ?resolve:D.resolver -> env -> D.t -> t
(** Run the full fixpoint.  [resolve] defaults to a resolver built from
    [env] (sufficient for mapped designs without [Instance]s). *)

val design : t -> D.t

(** {2 Incremental invalidation} *)

val advance : t -> D.entry list -> unit
(** Note committed design edits (the entries of a [D.log], in
    application order).  Facts are refreshed lazily at the next
    query: constants re-run from the forward closure of the touched
    nets, liveness/observability rebuild (they are cheap, near-linear
    passes). *)

val invalidate : t -> unit
(** Force the next query to re-run the full fixpoint. *)

(** {2 Fact queries}

    All queries refresh pending invalidations first. *)

val net_value : t -> int -> value
val net_const : t -> int -> bool option
(** [Some v] iff the net is proved constant [v]. *)

val net_observable : t -> int -> bool
(** Can this net's value influence an output port?  [false] is a
    proof of unobservability; [true] is conservative. *)

val comp_live : t -> int -> bool
(** Does some output of this component structurally reach an output
    port? *)

val comp_observable : t -> int -> bool
(** Is some output net of this component observable? *)

val const_nets : t -> (int * bool) list
(** All nets proved constant, with their values. *)

val dead_comps : t -> int list
(** Components no output port structurally depends on. *)

val unobservable_comps : t -> int list
(** Live components whose every output is masked (proved unobservable)
    — removable don't-care logic. *)

val stuck_pins : t -> (int * string * bool) list
(** Input pins fed by a proved-constant net: (comp, pin, value). *)

val floating_inputs : t -> (int * string) list
(** Unconnected input pins of live components. *)

val multi_driven : t -> int list
(** Nets with more than one driver (poisoned to [Top]). *)

(** {2 Summary} *)

type stats = {
  mutable full_runs : int;
  mutable incremental_runs : int;
  mutable transfers : int;  (** component transfer-function evaluations *)
}

val stats : t -> stats

type summary = {
  sum_comps : int;
  sum_nets : int;
  sum_const0 : int;
  sum_const1 : int;
  sum_stuck_pins : int;
  sum_dead_comps : int;
  sum_unobservable_comps : int;
  sum_floating_inputs : int;
  sum_multi_driven : int;
  sum_transfers : int;
}

val summary : t -> summary
val summary_to_json : string -> summary -> string
(** Flat JSON object; the string is the (escaped) design name. *)

val pp_summary : Format.formatter -> summary -> unit
