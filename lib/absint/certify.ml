(* Static rule certification.

   The engine's dynamic rule guard (PR 5) re-proves every sampled
   application by cone re-simulation.  Most rules are sound in every
   context, so the proof is hoisted offline: apply the rule at every
   site it matches over a small witness corpus and compare functions
   before/after — exhaustively over the cone leaves where the cones
   are small, by whole-design equivalence checking where they are not.
   The result is a signed, cached certificate per (rule, technology);
   Certified rules skip the dynamic check entirely
   (Engine.set_certified), leaving the flow's stage-boundary guards as
   the backstop. *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types
module R = Milo_rules.Rule
module Cone = Milo_rules.Cone
module Macro = Milo_library.Macro
module Technology = Milo_library.Technology
module Gate_comp = Milo_compilers.Gate_comp
module Table_map = Milo_techmap.Table_map
module Guard = Milo_guard.Guard
module Simulator = Milo_sim.Simulator
module Eval = Milo_sim.Eval

type verdict = Certified | Probabilistic | Uncertified | Refused

let verdict_name = function
  | Certified -> "certified"
  | Probabilistic -> "probabilistic"
  | Uncertified -> "uncertified"
  | Refused -> "refused"

type certificate = {
  cert_rule : string;
  cert_class : string;
  cert_tech : string;
  cert_verdict : verdict;
  cert_sites : int;
  cert_exhaustive : int;
  cert_random : int;
  cert_detail : string;
  cert_digest : string;
}

let exhaustive_leaves = 12
let random_leaves = 16
let random_vectors = 128
let seed = 0x5eed

(* Whole-design differential checking is skipped past this size; the
   witness corpus is far below it. *)
let max_diff_comps = 150

(* --- Signing ------------------------------------------------------------ *)

let signing_key = "milo-absint-cert-v1"

let payload c =
  String.concat "\x00"
    [
      signing_key;
      c.cert_rule;
      c.cert_class;
      c.cert_tech;
      verdict_name c.cert_verdict;
      string_of_int c.cert_sites;
      string_of_int c.cert_exhaustive;
      string_of_int c.cert_random;
      c.cert_detail;
    ]

let sign c = { c with cert_digest = Digest.to_hex (Digest.string (payload c)) }
let valid c = c.cert_digest = Digest.to_hex (Digest.string (payload c))

(* --- Cache -------------------------------------------------------------- *)

type cache = (string * string, certificate) Hashtbl.t

let create_cache () : cache = Hashtbl.create 64
let shared_cache : cache = create_cache ()
let reset_cache (c : cache) = Hashtbl.reset c

let lookup ?(cache = shared_cache) ~tech rule =
  match Hashtbl.find_opt cache (rule, tech) with
  | Some c when valid c -> Some c
  | Some _ | None -> None

(* --- Site outputs and cone snapshots ------------------------------------ *)

let site_out_nets ctx (site : R.site) =
  List.concat_map
    (fun cid ->
      match D.comp_opt ctx.R.design cid with
      | None -> []
      | Some c ->
          Hashtbl.fold
            (fun pin nid acc ->
              match D.pin_dir ~resolve:ctx.R.resolve ctx.R.design cid pin with
              | T.Output -> nid :: acc
              | T.Input -> acc
              | exception _ -> acc)
            c.D.conns [])
    site.R.site_comps
  |> List.sort_uniq compare

type witness = Ex | Rand

(* Packed sweeps: minterm masks are processed in groups of up to
   [Eval.Packed.lanes], one lane per mask, so a 2^12 exhaustive sweep
   is ~65 word-level cone evaluations. *)
let lanes = Eval.Packed.lanes
let group_mask n = if n >= lanes then -1 else (1 lsl n) - 1

let rec chunk_list n = function
  | [] -> []
  | l ->
      let rec take k acc = function
        | x :: rest when k > 0 -> take (k - 1) (x :: acc) rest
        | rest -> (List.rev acc, rest)
      in
      let g, rest = take n [] l in
      g :: chunk_list n rest

(* Leaf input words for one group: bit [l] of leaf [i]'s word is bit
   [i] of the group's [l]-th mask. *)
let group_words leaves group =
  List.mapi
    (fun i leaf ->
      let w = ref 0 in
      List.iteri
        (fun l m -> if m lsr i land 1 <> 0 then w := !w lor (1 lsl l))
        group;
      (leaf, !w))
    leaves

(* Pre-apply truth vectors of a net over its cone leaves: all 2^n
   assignments up to [exhaustive_leaves], seeded random vectors up to
   [random_leaves], nothing past that. *)
let snapshot ctx rng nid =
  match Cone.extract ctx ~max_leaves:random_leaves nid with
  | Some cone when cone.Cone.comps <> [] ->
      let leaves = cone.Cone.leaves in
      let n = List.length leaves in
      let masks =
        if n <= exhaustive_leaves then (Ex, List.init (1 lsl n) Fun.id)
        else
          ( Rand,
            List.init random_vectors (fun _ ->
                Random.State.int rng (1 lsl min n 30)) )
      in
      let kind, masks = masks in
      let groups = chunk_list lanes masks in
      let pre =
        try
          Some
            (List.map
               (fun g -> Cone.eval_packed ctx cone (group_words leaves g))
               groups)
        with _ -> None
      in
      Option.map (fun pre -> (kind, nid, leaves, groups, pre)) pre
  | Some _ | None -> None

exception Unverifiable

(* Post-apply value word of [nid0] under a packed leaf assignment,
   expanding through combinational macro drivers (mirror of the
   engine's [eval_after]). *)
let eval_after ctx assignment nid0 =
  let memo = Hashtbl.create 16 in
  let visiting = Hashtbl.create 16 in
  let rec value nid =
    match Hashtbl.find_opt memo nid with
    | Some v -> v
    | None ->
        if Hashtbl.mem visiting nid then raise Unverifiable;
        Hashtbl.replace visiting nid ();
        let v =
          match List.assoc_opt nid assignment with
          | Some v -> v
          | None -> (
              match Cone.expandable ctx nid with
              | Some (c, m) ->
                  let pvs =
                    List.map
                      (fun pin ->
                        ( pin,
                          match D.connection ctx.R.design c.D.id pin with
                          | Some n -> value n
                          | None -> 0 ))
                      m.Macro.inputs
                  in
                  let outs = Eval.Packed.macro_comb_outputs m pvs in
                  List.assoc (List.nth m.Macro.outputs 0) outs
              | None -> raise Unverifiable)
        in
        Hashtbl.remove visiting nid;
        Hashtbl.replace memo nid v;
        v
  in
  value nid0

(* --- Per-site verification ---------------------------------------------- *)

type site_result =
  | Site_exhaustive
  | Site_random
  | Site_nothing  (** the rule did not apply, or nothing was verifiable *)
  | Site_mismatch of string

let is_seq_kind ctx (k : T.kind) =
  match k with
  | T.Instance _ -> true
  | T.Macro m -> (
      match R.find_macro ctx m with
      | Some mac -> Macro.is_sequential mac
      | None -> true)
  | k -> T.is_sequential_kind k

(* Compare the snapshots against the post-apply design.  Nets that no
   longer exist are ignored (their consumers were rerouted; the
   whole-design tier and the stage guard cover them). *)
let compare_snapshots ctx snaps =
  let verified_ex = ref 0 and verified_rand = ref 0 and skipped = ref 0 in
  let mismatch = ref None in
  List.iter
    (fun (kind, nid, leaves, groups, pre) ->
      if !mismatch = None && D.net_opt ctx.R.design nid <> None then begin
        match
          List.iter2
            (fun g expect ->
              let v = eval_after ctx (group_words leaves g) nid in
              if (v lxor expect) land group_mask (List.length g) <> 0 then
                raise (Failure (Printf.sprintf "net %d diverges" nid)))
            groups pre
        with
        | () -> (
            match kind with
            | Ex -> incr verified_ex
            | Rand -> incr verified_rand)
        | exception Unverifiable -> incr skipped
        | exception Failure d -> mismatch := Some d
      end)
    snaps;
  (!verified_ex, !verified_rand, !skipped, !mismatch)

let whole_design_check ctx pre_copy =
  let env = { Simulator.find_macro = (fun n -> Technology.find ctx.R.tech n) } in
  let is_seq = is_seq_kind ctx in
  match Guard.check ~is_seq env pre_copy env ctx.R.design with
  | None ->
      let seq =
        List.exists (fun (c : D.comp) -> is_seq c.D.kind) (D.comps pre_copy)
      in
      let inputs =
        List.length
          (List.filter (fun (_, dir, _) -> dir = T.Input) (D.ports pre_copy))
      in
      if (not seq) && inputs <= exhaustive_leaves then Site_exhaustive
      else Site_random
  | Some div -> Site_mismatch (Guard.describe div)
  | exception _ -> Site_nothing

let check_site ctx rng (rule : R.t) site =
  let outs = site_out_nets ctx site in
  let snaps = List.filter_map (snapshot ctx rng) outs in
  let pre_copy =
    if D.num_comps ctx.R.design <= max_diff_comps then
      Some (D.copy ctx.R.design)
    else None
  in
  let log = D.new_log () in
  match rule.R.apply ctx site log with
  | exception _ ->
      D.undo ctx.R.design log;
      Site_nothing
  | false ->
      D.undo ctx.R.design log;
      Site_nothing
  | true ->
      let ex, rand, skipped, mismatch = compare_snapshots ctx snaps in
      let result =
        match mismatch with
        | Some d -> Site_mismatch d
        | None ->
            if ex > 0 && rand = 0 && skipped = 0 then Site_exhaustive
            else if ex + rand > 0 then Site_random
            else (
              match pre_copy with
              | Some pre -> whole_design_check ctx pre
              | None -> Site_nothing)
      in
      D.undo ctx.R.design log;
      result

(* --- The witness corpus ------------------------------------------------- *)

(* Generic micro-free designs covering the structural patterns the
   critic rules match: built from generic macros, then mapped onto the
   target like any design.  Kept deliberately small so cone
   enumeration is exhaustive almost everywhere. *)

let comb_design () =
  let d = D.create "cert_comb" in
  let set = Gate_comp.generic_set (Milo_library.Generic.get ()) in
  let inp n = D.add_port d n T.Input in
  let out n net = ignore (D.add_port ~net d n T.Output) in
  let g fn ns = Gate_comp.add_gate d set fn ns in
  let a = inp "A" and b = inp "B" and c = inp "C" in
  let e = inp "E" and f = inp "F" in
  let vss = Gate_comp.add_const d set T.Vss in
  let vdd = Gate_comp.add_const d set T.Vdd in
  (* invert-root / cone-resynth: a gate feeding a lone inverter *)
  out "Y0" (g T.Inv [ g T.And [ a; b ] ]);
  (* gate-merge: nested associative gates, inner on fanout 1 *)
  out "Y1" (g T.And [ g T.And [ a; b ]; c ]);
  (* isolate-input: an associative gate of arity 3 *)
  out "Y2" (g T.Or [ a; b; c ]);
  (* double-inverter: the pair must sit below another gate — the rule
     refuses port-bound outputs *)
  out "Y3" (g T.And [ g T.Inv [ g T.Inv [ e ] ]; a ]);
  (* buffer-elim *)
  out "Y4" (g T.And [ g T.Buf [ f ]; a ]);
  (* constant-prop: a gate with a constant input *)
  out "Y5" (g T.And [ c; vss ]);
  (* share-duplicate: two identical gates over the same nets *)
  out "Y6" (g T.Or [ g T.And [ e; f ]; g T.And [ e; f ] ]);
  (* duplicate-driver: one gate feeding two consumers *)
  let x = g T.Xor [ a; b ] in
  out "Y7" (g T.And [ x; c ]);
  out "Y8" (g T.Or [ x; e ]);
  (* fanout-buffer: a net loaded past the fanout limit *)
  let h = g T.Or [ a; f ] in
  let loads = List.init 10 (fun _ -> g T.And [ h; b ]) in
  out "Y9" (Gate_comp.tree d set T.Or loads);
  (* dead-logic: an unconsumed gate *)
  ignore (g T.Nor [ a; b ]);
  (* masked cone: OR with a constant-one input hides its other leg *)
  out "YA" (g T.Or [ g T.Xor [ e; f ]; vdd ]);
  (* ornor-share: OR and NOR over the same inputs *)
  out "YB" (g T.Or [ b; c ]);
  out "YC" (g T.Nor [ b; c ]);
  (* const-select-mux: a mux whose select is tied *)
  let mux = D.add_comp d ~name:"cmux" (T.Macro "MUX2") in
  D.connect d mux "D0" a;
  D.connect d mux "D1" b;
  D.connect d mux "S0" vdd;
  let my = D.new_net d in
  D.connect d mux "Y" my;
  (* below a gate, not a port: the rule refuses port-bound outputs *)
  out "YD" (g T.And [ my; c ]);
  d

let seq_design () =
  let d = D.create "cert_seq" in
  let inp n = D.add_port d n T.Input in
  let d0 = inp "D0" and d1 = inp "D1" and s = inp "S" and clk = inp "CLK" in
  let mux = D.add_comp d ~name:"mux" (T.Macro "MUX2") in
  D.connect d mux "D0" d0;
  D.connect d mux "D1" d1;
  D.connect d mux "S0" s;
  let my = D.new_net d in
  D.connect d mux "Y" my;
  let ff = D.add_comp d ~name:"ff" (T.Macro "DFF") in
  D.connect d ff "D" my;
  D.connect d ff "CLK" clk;
  D.connect d ff "Q" (D.add_port d "Q" T.Output);
  d

let muxff_design () =
  let d = D.create "cert_muxff" in
  let inp n = D.add_port d n T.Input in
  let e0 = inp "E0" and e1 = inp "E1" and s0 = inp "S0" in
  let f0 = inp "F0" and sm = inp "SM" and clk = inp "CLK" in
  let mux = D.add_comp d ~name:"mux" (T.Macro "MUX2") in
  D.connect d mux "D0" e0;
  D.connect d mux "D1" e1;
  D.connect d mux "S0" s0;
  let my = D.new_net d in
  D.connect d mux "Y" my;
  let mf = D.add_comp d ~name:"mf" (T.Macro "MUXFF2") in
  D.connect d mf "D0" my;
  D.connect d mf "D1" f0;
  D.connect d mf "S0" sm;
  D.connect d mf "CLK" clk;
  D.connect d mf "Q" (D.add_port d "Q" T.Output);
  d

let adder_design () =
  let d = D.create "cert_adder" in
  let inp n = D.add_port d n T.Input in
  let a = List.init 4 (fun i -> inp (Printf.sprintf "A%d" i)) in
  let b = List.init 4 (fun i -> inp (Printf.sprintf "B%d" i)) in
  let ci = inp "CI" in
  let adder name kind sum cout =
    let c = D.add_comp d ~name (T.Macro kind) in
    List.iteri (fun i n -> D.connect d c (Printf.sprintf "A%d" i) n) a;
    List.iteri (fun i n -> D.connect d c (Printf.sprintf "B%d" i) n) b;
    D.connect d c "CIN" ci;
    List.iteri
      (fun i _ ->
        D.connect d c
          (Printf.sprintf "S%d" i)
          (D.add_port d (Printf.sprintf "%s%d" sum i) T.Output))
      a;
    D.connect d c "COUT" (D.add_port d cout T.Output)
  in
  adder "rip" "ADD4" "S" "CO";
  adder "cla" "ADD4CLA" "T" "TCO";
  d

(* A component already at the high-power level, when the technology
   offers one — the standard-power-swap rule's pattern lives only in
   the target namespace. *)
let power_design (target : Table_map.target) =
  let tech = target.Table_map.tech in
  match
    List.find_opt
      (fun (m : Macro.t) ->
        m.Macro.power_level = Macro.High
        && (not (Macro.is_sequential m))
        && List.length m.Macro.outputs = 1
        && List.length m.Macro.inputs <= 4
        && Technology.standard_variant tech m.Macro.mname <> None)
      (Technology.all tech)
  with
  | None -> []
  | Some m ->
      let d = D.create "cert_power" in
      let c = D.add_comp d ~name:"hp" (T.Macro m.Macro.mname) in
      List.iteri
        (fun i p ->
          D.connect d c p (D.add_port d (Printf.sprintf "I%d" i) T.Input))
        m.Macro.inputs;
      D.connect d c (List.hd m.Macro.outputs) (D.add_port d "O" T.Output);
      [ d ]

let default_corpus target =
  List.filter_map
    (fun mk ->
      try Some (Table_map.map_design target (mk ())) with _ -> None)
    [ comb_design; seq_design; muxff_design; adder_design ]
  @ power_design target

(* --- Certification ------------------------------------------------------ *)

let certify_rule ~tech_name ~contexts ~max_sites (rule : R.t) =
  let rng =
    Random.State.make [| seed; Hashtbl.hash rule.R.rule_name |]
  in
  let sites = ref 0 and ex = ref 0 and rand = ref 0 in
  let detail = ref "" in
  let refused = ref false in
  List.iter
    (fun ctx ->
      if not !refused then
        let found = try rule.R.find ctx with _ -> [] in
        List.iteri
          (fun i site ->
            if (not !refused) && i < 4 && !sites < max_sites then begin
              match check_site ctx rng rule site with
              | Site_nothing -> ()
              | Site_exhaustive ->
                  incr sites;
                  incr ex
              | Site_random ->
                  incr sites;
                  incr rand
              | Site_mismatch d ->
                  incr sites;
                  refused := true;
                  detail := Printf.sprintf "%s: %s" site.R.descr d
            end)
          found)
    contexts;
  let verdict =
    if !refused then Refused
    else if !ex > 0 && !rand = 0 then Certified
    else if !ex + !rand > 0 then Probabilistic
    else Uncertified
  in
  sign
    {
      cert_rule = rule.R.rule_name;
      cert_class = R.class_name rule.R.rule_class;
      cert_tech = tech_name;
      cert_verdict = verdict;
      cert_sites = !sites;
      cert_exhaustive = !ex;
      cert_random = !rand;
      cert_detail = !detail;
      cert_digest = "";
    }

let certify_rules ?(cache = shared_cache) ?(witnesses = []) ?(max_sites = 12)
    (target : Table_map.target) rules =
  let tech_name = Technology.name target.Table_map.tech in
  let corpus = lazy (default_corpus target @ witnesses) in
  let contexts =
    lazy
      (List.map
         (fun d ->
           R.make_context target.Table_map.tech target.Table_map.set (D.copy d))
         (Lazy.force corpus))
  in
  List.map
    (fun (rule : R.t) ->
      match lookup ~cache ~tech:tech_name rule.R.rule_name with
      | Some c -> c
      | None ->
          let c =
            certify_rule ~tech_name ~contexts:(Lazy.force contexts) ~max_sites
              rule
          in
          Hashtbl.replace cache (rule.R.rule_name, tech_name) c;
          c)
    rules

let certified_names certs =
  List.filter_map
    (fun c -> if c.cert_verdict = Certified then Some c.cert_rule else None)
    certs

(* --- Rendering ---------------------------------------------------------- *)

let cert_to_json c =
  let esc = Milo_lint.Diagnostic.json_escape in
  Printf.sprintf
    "{\"rule\": \"%s\", \"class\": \"%s\", \"tech\": \"%s\", \"verdict\": \
     \"%s\", \"sites\": %d, \"exhaustive\": %d, \"random\": %d, \"detail\": \
     \"%s\", \"digest\": \"%s\"}"
    (esc c.cert_rule) (esc c.cert_class) (esc c.cert_tech)
    (verdict_name c.cert_verdict)
    c.cert_sites c.cert_exhaustive c.cert_random (esc c.cert_detail)
    (esc c.cert_digest)

let pp_certificate ppf c =
  Format.fprintf ppf "%-20s %-8s %-13s sites %2d (%d exhaustive, %d random)%s"
    c.cert_rule c.cert_class
    (verdict_name c.cert_verdict)
    c.cert_sites c.cert_exhaustive c.cert_random
    (if c.cert_detail = "" then "" else " — " ^ c.cert_detail)
