(* Lint passes over abstract-interpretation facts. *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types
module Diagnostic = Milo_lint.Diagnostic

let comp_loc design cid =
  match D.comp_opt design cid with
  | Some c ->
      Diagnostic.Comp { cname = c.D.cname; ckind = T.kind_name c.D.kind }
  | None -> Diagnostic.Design

let pin_loc design cid pin =
  match D.comp_opt design cid with
  | Some c ->
      Diagnostic.Pin { cname = c.D.cname; ckind = T.kind_name c.D.kind; pin }
  | None -> Diagnostic.Design

let net_name design nid =
  match D.net_opt design nid with
  | Some n -> n.D.nname
  | None -> string_of_int nid

let constant_outputs st =
  let design = Absint.design st in
  List.filter_map
    (fun (p, dir, nid) ->
      if dir <> T.Output then None
      else
        match Absint.net_const st nid with
        | Some v ->
            Some
              (Diagnostic.make ~rule:"absint-constant-output"
                 ~severity:Diagnostic.Warning ~loc:(Diagnostic.Port p)
                 "output port %s is constant %d" p
                 (if v then 1 else 0))
        | None -> None)
    (D.ports design)

let dead_macros st =
  let design = Absint.design st in
  List.map
    (fun cid ->
      Diagnostic.make ~rule:"absint-dead-macro" ~severity:Diagnostic.Warning
        ~loc:(comp_loc design cid)
        "no output port depends on this component")
    (Absint.dead_comps st)

let unobservable_cones st =
  let design = Absint.design st in
  List.map
    (fun cid ->
      Diagnostic.make ~rule:"absint-unobservable-cone"
        ~severity:Diagnostic.Warning ~loc:(comp_loc design cid)
        "outputs are masked on every path to an output port")
    (Absint.unobservable_comps st)

let stuck_inputs st =
  let design = Absint.design st in
  List.map
    (fun (cid, pin, v) ->
      Diagnostic.make ~rule:"absint-stuck-input" ~severity:Diagnostic.Info
        ~loc:(pin_loc design cid pin)
        "input is stuck at %d" (if v then 1 else 0))
    (Absint.stuck_pins st)

let floating_live_inputs st =
  let design = Absint.design st in
  List.map
    (fun (cid, pin) ->
      Diagnostic.make ~rule:"absint-floating-input" ~severity:Diagnostic.Error
        ~loc:(pin_loc design cid pin)
        "unconnected input on a component outputs depend on")
    (Absint.floating_inputs st)

let multi_driven_live st =
  let design = Absint.design st in
  List.map
    (fun nid ->
      let severity =
        if Absint.net_observable st nid then Diagnostic.Error
        else Diagnostic.Warning
      in
      Diagnostic.make ~rule:"absint-multi-driven" ~severity
        ~loc:(Diagnostic.Net { nname = net_name design nid })
        "net has multiple drivers%s"
        (if severity = Diagnostic.Error then " and reaches an output port"
         else ""))
    (Absint.multi_driven st)

let all st =
  List.stable_sort Diagnostic.compare_diag
    (constant_outputs st @ dead_macros st @ unobservable_cones st
   @ stuck_inputs st @ floating_live_inputs st @ multi_driven_live st)
