(* Abstract interpretation over the mapped netlist.

   The domain is the flat ternary lattice 0 < ⊤ > 1 per net.  The
   forward pass is a chaotic-iteration worklist over component
   transfer functions: a component's concrete evaluator
   ([Milo_sim.Eval]) is lifted pointwise by enumerating the unknown
   (⊤) inputs — up to [max_enum] of them — and joining the outputs
   across the assignments.  Using the very evaluator the simulator
   uses is what makes the facts sound by construction against it.

   Initialization is pessimistic in the simulator's own terms:
   undriven nets read as [false] there, so they start at [Zero];
   anything driven starts at [Top] and is only refined downwards
   (⊤ → constant).  Nets with several drivers are poisoned to [Top]
   permanently.  Sequential outputs and [Instance]s stay [Top].

   Refinement is monotone (a net never moves between the two
   constants; a conflict poisons it), so the fixpoint terminates even
   on combinational cycles.

   On top of the constant facts, two backward passes compute
   liveness (structural reachability from output ports) and
   observability (can toggling a net change an observable output,
   with proved-constant side inputs held at their constants).
   Observability marks only grow, so that pass terminates too. *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types
module Macro = Milo_library.Macro
module Eval = Milo_sim.Eval
module Simulator = Milo_sim.Simulator

type value = Zero | One | Top

let value_name = function Zero -> "0" | One -> "1" | Top -> "top"
let of_bool b = if b then One else Zero

(* Transfer functions enumerate at most this many unknown inputs;
   past it the outputs stay ⊤ (and observability turns conservative). *)
let max_enum = 8

type env = string -> Macro.t option

let env_of_techs techs =
  let rec go techs name =
    match techs with
    | [] -> None
    | t :: rest -> (
        match Milo_library.Technology.find_opt t name with
        | Some m -> Some m
        | None -> go rest name)
  in
  go techs

type stats = {
  mutable full_runs : int;
  mutable incremental_runs : int;
  mutable transfers : int;
}

type t = {
  ai_design : D.t;
  ai_env : env;
  ai_resolve : D.resolver;
  values : (int, value) Hashtbl.t;
  poisoned : (int, unit) Hashtbl.t;  (* pinned ⊤: multi-driven / conflict *)
  multi : (int, unit) Hashtbl.t;  (* multi-driven nets *)
  obs_nets : (int, unit) Hashtbl.t;
  live_comps : (int, unit) Hashtbl.t;
  dirty_nets : (int, unit) Hashtbl.t;
  dirty_comps : (int, unit) Hashtbl.t;
  mutable fresh : bool;  (* facts match the design *)
  mutable full_needed : bool;
  ai_stats : stats;
}

let design st = st.ai_design
let stats st = st.ai_stats

(* --- Kind classification ----------------------------------------------- *)

let comp_macro st (c : D.comp) =
  match c.D.kind with T.Macro m -> st.ai_env m | _ -> None

(* Conservative: unknown macros and instances count as sequential
   (their outputs stay ⊤ and their inputs stay observable). *)
let comp_is_opaque st (c : D.comp) =
  match c.D.kind with
  | T.Instance _ -> true
  | T.Macro m -> (
      match st.ai_env m with
      | Some mac -> Macro.is_sequential mac
      | None -> true)
  | k -> T.is_sequential_kind k

(* Input pins of a combinational component, with their connected nets
   ([None] = unconnected, reads [false]).  Raises for opaque kinds. *)
let comb_input_pins st (c : D.comp) =
  let pins =
    match comp_macro st c with
    | Some mac -> List.map (fun p -> (p, T.Input)) mac.Macro.inputs
    | None -> T.pins_of_kind c.D.kind
  in
  List.filter_map
    (fun (p, dir) ->
      if dir = T.Input then Some (p, Hashtbl.find_opt c.D.conns p) else None)
    pins

let comb_eval st (c : D.comp) pvs =
  match comp_macro st c with
  | Some mac -> Eval.macro_comb_outputs mac pvs
  | None -> Eval.comb_outputs c.D.kind pvs

(* Connected output pins: (pin, net). *)
let output_conns st (c : D.comp) =
  Hashtbl.fold
    (fun pin nid acc ->
      match D.pin_dir ~resolve:st.ai_resolve st.ai_design c.D.id pin with
      | T.Output -> (pin, nid) :: acc
      | T.Input -> acc
      | exception _ -> acc)
    c.D.conns []

(* --- Net initialization ------------------------------------------------ *)

let count_drivers st (n : D.net) =
  let pins =
    List.fold_left
      (fun acc (cid, pin) ->
        match D.pin_dir ~resolve:st.ai_resolve st.ai_design cid pin with
        | T.Output -> acc + 1
        | T.Input -> acc
        | exception _ -> acc + 1 (* unknown pin: assume it drives *))
      0 n.D.npins
  in
  match n.D.nport with Some (_, T.Input) -> pins + 1 | _ -> pins

let init_net st (n : D.net) =
  Hashtbl.remove st.poisoned n.D.nid;
  Hashtbl.remove st.multi n.D.nid;
  let drivers = count_drivers st n in
  let v =
    if drivers > 1 then begin
      Hashtbl.replace st.multi n.D.nid ();
      Hashtbl.replace st.poisoned n.D.nid ();
      Top
    end
    else if drivers = 0 then Zero (* undriven nets read as [false] *)
    else Top
  in
  Hashtbl.replace st.values n.D.nid v

let net_value_raw st nid =
  match Hashtbl.find_opt st.values nid with Some v -> v | None -> Top

(* --- The lifted transfer function -------------------------------------- *)

(* Outputs of [c] under the current input facts: [None] per pin means
   "stays ⊤".  Enumerates the ⊤ inputs; any evaluator exception makes
   the whole component conservative. *)
let transfer st (c : D.comp) : (int * value) list =
  if comp_is_opaque st c then []
  else
    match comb_input_pins st c with
    | exception _ -> []
    | inputs ->
        let outs = output_conns st c in
        if outs = [] then []
        else
          let vals =
            List.map
              (fun (p, net) ->
                let v =
                  match net with
                  | None -> Zero
                  | Some nid -> net_value_raw st nid
                in
                (p, v))
              inputs
          in
          let unknowns =
            List.length (List.filter (fun (_, v) -> v = Top) vals)
          in
          if unknowns > max_enum then []
          else begin
            let results : (string, value) Hashtbl.t = Hashtbl.create 4 in
            let ok =
              try
                for m = 0 to (1 lsl unknowns) - 1 do
                  let _, pvs =
                    List.fold_left
                      (fun (i, acc) (p, v) ->
                        match v with
                        | Zero -> (i, (p, false) :: acc)
                        | One -> (i, (p, true) :: acc)
                        | Top -> (i + 1, (p, m land (1 lsl i) <> 0) :: acc))
                      (0, []) vals
                  in
                  st.ai_stats.transfers <- st.ai_stats.transfers + 1;
                  List.iter
                    (fun (p, b) ->
                      let v = of_bool b in
                      match Hashtbl.find_opt results p with
                      | None -> Hashtbl.replace results p v
                      | Some v' when v' = v -> ()
                      | Some _ -> Hashtbl.replace results p Top)
                    (comb_eval st c pvs)
                done;
                true
              with _ -> false
            in
            if not ok then []
            else
              List.filter_map
                (fun (pin, nid) ->
                  match Hashtbl.find_opt results pin with
                  | Some ((Zero | One) as v) -> Some (nid, v)
                  | Some Top | None -> None)
                outs
          end

(* --- Constant fixpoint ------------------------------------------------- *)

let run_const st seeds =
  let queue = Queue.create () in
  let queued = Hashtbl.create 64 in
  let push cid =
    if not (Hashtbl.mem queued cid) then begin
      Hashtbl.replace queued cid ();
      Queue.add cid queue
    end
  in
  List.iter push seeds;
  while not (Queue.is_empty queue) do
    let cid = Queue.pop queue in
    Hashtbl.remove queued cid;
    match D.comp_opt st.ai_design cid with
    | None -> ()
    | Some c ->
        List.iter
          (fun (nid, v) ->
            if not (Hashtbl.mem st.poisoned nid) then begin
              let refined =
                match (net_value_raw st nid, v) with
                | Top, ((Zero | One) as nv) -> Some nv
                | Zero, One | One, Zero -> Some Top (* conflict: poison *)
                | _ -> None
              in
              match refined with
              | None -> ()
              | Some nv ->
                  Hashtbl.replace st.values nid nv;
                  if nv = Top then Hashtbl.replace st.poisoned nid ();
                  List.iter
                    (fun (scid, _) -> push scid)
                    (D.sinks ~resolve:st.ai_resolve st.ai_design nid)
            end)
          (transfer st c)
  done

(* --- Liveness ----------------------------------------------------------- *)

let run_liveness st =
  Hashtbl.reset st.live_comps;
  let seen = Hashtbl.create 64 in
  let rec net nid =
    if not (Hashtbl.mem seen nid) then begin
      Hashtbl.replace seen nid ();
      match D.driver ~resolve:st.ai_resolve st.ai_design nid with
      | D.Src_comp (cid, _) -> comp cid
      | D.Src_port _ | D.Src_none -> ()
    end
  and comp cid =
    if not (Hashtbl.mem st.live_comps cid) then begin
      Hashtbl.replace st.live_comps cid ();
      match D.comp_opt st.ai_design cid with
      | None -> ()
      | Some c ->
          Hashtbl.iter
            (fun pin nid ->
              match
                D.pin_dir ~resolve:st.ai_resolve st.ai_design cid pin
              with
              | T.Input -> net nid
              | T.Output -> ()
              | exception _ -> net nid)
            c.D.conns
    end
  in
  List.iter
    (fun (_, dir, nid) -> if dir = T.Output then net nid)
    (D.ports st.ai_design)

(* --- Observability ------------------------------------------------------ *)

(* Does toggling input pin [p] of [c] ever change one of the
   observable outputs [obs]?  Proved-constant side inputs are held at
   their constants (that is where the don't-cares come from); the
   remaining ⊤ side inputs are enumerated. *)
let pin_propagates st (c : D.comp) inputs obs p =
  let others = List.filter (fun (q, _) -> q <> p) inputs in
  let vals =
    List.map
      (fun (q, net) ->
        let v =
          match net with None -> Zero | Some nid -> net_value_raw st nid
        in
        (q, v))
      others
  in
  let unknowns = List.length (List.filter (fun (_, v) -> v = Top) vals) in
  if unknowns > max_enum then true
  else
    try
      let differs = ref false in
      let m = ref 0 in
      while (not !differs) && !m < 1 lsl unknowns do
        let _, pvs =
          List.fold_left
            (fun (i, acc) (q, v) ->
              match v with
              | Zero -> (i, (q, false) :: acc)
              | One -> (i, (q, true) :: acc)
              | Top -> (i + 1, (q, !m land (1 lsl i) <> 0) :: acc))
            (0, []) vals
        in
        st.ai_stats.transfers <- st.ai_stats.transfers + 2;
        let lo = comb_eval st c ((p, false) :: pvs)
        and hi = comb_eval st c ((p, true) :: pvs) in
        if
          List.exists
            (fun out ->
              Eval.get lo out <> Eval.get hi out)
            obs
        then differs := true;
        incr m
      done;
      !differs
    with _ -> true

let run_observability st =
  Hashtbl.reset st.obs_nets;
  let queue = Queue.create () in
  let queued = Hashtbl.create 64 in
  let push cid =
    if not (Hashtbl.mem queued cid) then begin
      Hashtbl.replace queued cid ();
      Queue.add cid queue
    end
  in
  let mark nid =
    if not (Hashtbl.mem st.obs_nets nid) then begin
      Hashtbl.replace st.obs_nets nid ();
      match D.driver ~resolve:st.ai_resolve st.ai_design nid with
      | D.Src_comp (cid, _) -> push cid
      | D.Src_port _ | D.Src_none -> ()
    end
  in
  List.iter
    (fun (_, dir, nid) -> if dir = T.Output then mark nid)
    (D.ports st.ai_design);
  while not (Queue.is_empty queue) do
    let cid = Queue.pop queue in
    Hashtbl.remove queued cid;
    match D.comp_opt st.ai_design cid with
    | None -> ()
    | Some c ->
        let obs_outs =
          List.filter_map
            (fun (pin, nid) ->
              if Hashtbl.mem st.obs_nets nid then Some pin else None)
            (output_conns st c)
        in
        if obs_outs <> [] then begin
          let conservative () =
            Hashtbl.iter
              (fun pin nid ->
                match
                  D.pin_dir ~resolve:st.ai_resolve st.ai_design cid pin
                with
                | T.Input -> mark nid
                | T.Output -> ()
                | exception _ -> mark nid)
              c.D.conns
          in
          if comp_is_opaque st c then conservative ()
          else
            match comb_input_pins st c with
            | exception _ -> conservative ()
            | inputs ->
                List.iter
                  (fun (p, net) ->
                    match net with
                    | None -> ()
                    | Some nid ->
                        if
                          (not (Hashtbl.mem st.obs_nets nid))
                          && pin_propagates st c inputs obs_outs p
                        then mark nid)
                  inputs
        end
  done

(* --- Refresh ------------------------------------------------------------ *)

let run_full st =
  Hashtbl.reset st.values;
  Hashtbl.reset st.poisoned;
  Hashtbl.reset st.multi;
  List.iter (fun n -> init_net st n) (D.nets st.ai_design);
  run_const st (List.map (fun (c : D.comp) -> c.D.id) (D.comps st.ai_design));
  st.ai_stats.full_runs <- st.ai_stats.full_runs + 1

(* Forward closure of the touched nets: everything whose value may
   depend on them, collected as (nets to re-initialize, components to
   re-evaluate). *)
let run_incremental st =
  let cl_nets = Hashtbl.create 64 and cl_comps = Hashtbl.create 64 in
  let rec net nid =
    if not (Hashtbl.mem cl_nets nid) then begin
      Hashtbl.replace cl_nets nid ();
      match D.net_opt st.ai_design nid with
      | None -> ()
      | Some _ ->
          List.iter
            (fun (cid, _) -> comp cid)
            (D.sinks ~resolve:st.ai_resolve st.ai_design nid)
    end
  and comp cid =
    if not (Hashtbl.mem cl_comps cid) then begin
      Hashtbl.replace cl_comps cid ();
      match D.comp_opt st.ai_design cid with
      | None -> ()
      | Some c -> List.iter (fun (_, nid) -> net nid) (output_conns st c)
    end
  in
  Hashtbl.iter (fun nid () -> net nid) st.dirty_nets;
  Hashtbl.iter
    (fun cid () ->
      (* every net a dirty component touches, not just its outputs:
         a reconnected output pin changes the driver census of the
         net it now drives *)
      comp cid;
      match D.comp_opt st.ai_design cid with
      | None -> ()
      | Some c -> Hashtbl.iter (fun _ nid -> net nid) c.D.conns)
    st.dirty_comps;
  let seeds = Hashtbl.copy cl_comps in
  Hashtbl.iter
    (fun nid () ->
      match D.net_opt st.ai_design nid with
      | None ->
          Hashtbl.remove st.values nid;
          Hashtbl.remove st.poisoned nid;
          Hashtbl.remove st.multi nid
      | Some n -> (
          init_net st n;
          (* the (possibly unchanged) driver recomputes the value *)
          match D.driver ~resolve:st.ai_resolve st.ai_design nid with
          | D.Src_comp (cid, _) -> Hashtbl.replace seeds cid ()
          | D.Src_port _ | D.Src_none -> ()))
    cl_nets;
  run_const st (Hashtbl.fold (fun cid () acc -> cid :: acc) seeds []);
  st.ai_stats.incremental_runs <- st.ai_stats.incremental_runs + 1

let refresh st =
  if not st.fresh then begin
    if st.full_needed then run_full st else run_incremental st;
    run_liveness st;
    run_observability st;
    Hashtbl.reset st.dirty_nets;
    Hashtbl.reset st.dirty_comps;
    st.full_needed <- false;
    st.fresh <- true
  end

(* --- Construction / invalidation --------------------------------------- *)

let analyze ?resolve env design =
  let resolve =
    match resolve with
    | Some r -> r
    | None ->
        Simulator.resolver_of_env
          {
            Simulator.find_macro =
              (fun n ->
                match env n with Some m -> m | None -> raise Not_found);
          }
  in
  let st =
    {
      ai_design = design;
      ai_env = env;
      ai_resolve = resolve;
      values = Hashtbl.create 256;
      poisoned = Hashtbl.create 16;
      multi = Hashtbl.create 16;
      obs_nets = Hashtbl.create 256;
      live_comps = Hashtbl.create 256;
      dirty_nets = Hashtbl.create 16;
      dirty_comps = Hashtbl.create 16;
      fresh = false;
      full_needed = true;
      ai_stats = { full_runs = 0; incremental_runs = 0; transfers = 0 };
    }
  in
  refresh st;
  st

let invalidate st =
  st.fresh <- false;
  st.full_needed <- true

let advance st entries =
  if entries <> [] then begin
    st.fresh <- false;
    List.iter
      (fun e ->
        match e with
        | D.E_add_comp (cid, _, _) | D.E_set_kind (cid, _, _) ->
            Hashtbl.replace st.dirty_comps cid ()
        | D.E_remove_comp (cid, _, _, conns) ->
            Hashtbl.replace st.dirty_comps cid ();
            List.iter (fun (_, nid) -> Hashtbl.replace st.dirty_nets nid ()) conns
        | D.E_connect (cid, _, prev, _) -> (
            Hashtbl.replace st.dirty_comps cid ();
            match prev with
            | Some nid -> Hashtbl.replace st.dirty_nets nid ()
            | None -> ())
        | D.E_add_net (nid, _) | D.E_remove_net (nid, _, _) ->
            Hashtbl.replace st.dirty_nets nid ())
      entries
  end

(* --- Queries ------------------------------------------------------------ *)

let net_value st nid =
  refresh st;
  match D.net_opt st.ai_design nid with
  | None -> Top
  | Some _ -> net_value_raw st nid

let net_const st nid =
  match net_value st nid with Zero -> Some false | One -> Some true | Top -> None

let net_observable st nid =
  refresh st;
  Hashtbl.mem st.obs_nets nid

let comp_live st cid =
  refresh st;
  Hashtbl.mem st.live_comps cid

let comp_observable st cid =
  refresh st;
  match D.comp_opt st.ai_design cid with
  | None -> false
  | Some c ->
      List.exists
        (fun (_, nid) -> Hashtbl.mem st.obs_nets nid)
        (output_conns st c)

let const_nets st =
  refresh st;
  List.filter_map
    (fun (n : D.net) ->
      match net_value_raw st n.D.nid with
      | Zero -> Some (n.D.nid, false)
      | One -> Some (n.D.nid, true)
      | Top -> None)
    (D.nets st.ai_design)

let dead_comps st =
  refresh st;
  List.filter_map
    (fun (c : D.comp) ->
      if Hashtbl.mem st.live_comps c.D.id then None else Some c.D.id)
    (D.comps st.ai_design)

let unobservable_comps st =
  refresh st;
  List.filter_map
    (fun (c : D.comp) ->
      if
        Hashtbl.mem st.live_comps c.D.id
        && not
             (List.exists
                (fun (_, nid) -> Hashtbl.mem st.obs_nets nid)
                (output_conns st c))
      then Some c.D.id
      else None)
    (D.comps st.ai_design)

let stuck_pins st =
  refresh st;
  List.concat_map
    (fun (c : D.comp) ->
      Hashtbl.fold
        (fun pin nid acc ->
          match D.pin_dir ~resolve:st.ai_resolve st.ai_design c.D.id pin with
          | T.Input -> (
              match net_value_raw st nid with
              | Zero -> (c.D.id, pin, false) :: acc
              | One -> (c.D.id, pin, true) :: acc
              | Top -> acc)
          | T.Output -> acc
          | exception _ -> acc)
        c.D.conns [])
    (D.comps st.ai_design)

let floating_inputs st =
  refresh st;
  List.concat_map
    (fun (c : D.comp) ->
      if not (Hashtbl.mem st.live_comps c.D.id) then []
      else
        let pins =
          match comp_macro st c with
          | Some mac -> List.map (fun p -> (p, T.Input)) mac.Macro.inputs
          | None -> (
              try T.pins_of_kind ~resolve:st.ai_resolve c.D.kind
              with _ -> [])
        in
        List.filter_map
          (fun (p, dir) ->
            if dir = T.Input && not (Hashtbl.mem c.D.conns p) then
              Some (c.D.id, p)
            else None)
          pins)
    (D.comps st.ai_design)

let multi_driven st =
  refresh st;
  List.sort compare (Hashtbl.fold (fun nid () acc -> nid :: acc) st.multi [])

(* --- Summary ------------------------------------------------------------ *)

type summary = {
  sum_comps : int;
  sum_nets : int;
  sum_const0 : int;
  sum_const1 : int;
  sum_stuck_pins : int;
  sum_dead_comps : int;
  sum_unobservable_comps : int;
  sum_floating_inputs : int;
  sum_multi_driven : int;
  sum_transfers : int;
}

let summary st =
  refresh st;
  let consts = const_nets st in
  {
    sum_comps = D.num_comps st.ai_design;
    sum_nets = D.num_nets st.ai_design;
    sum_const0 = List.length (List.filter (fun (_, v) -> not v) consts);
    sum_const1 = List.length (List.filter (fun (_, v) -> v) consts);
    sum_stuck_pins = List.length (stuck_pins st);
    sum_dead_comps = List.length (dead_comps st);
    sum_unobservable_comps = List.length (unobservable_comps st);
    sum_floating_inputs = List.length (floating_inputs st);
    sum_multi_driven = List.length (multi_driven st);
    sum_transfers = st.ai_stats.transfers;
  }

let summary_to_json name s =
  Printf.sprintf
    "{\"design\": \"%s\", \"comps\": %d, \"nets\": %d, \"const0\": %d, \
     \"const1\": %d, \"stuck_pins\": %d, \"dead_comps\": %d, \
     \"unobservable_comps\": %d, \"floating_inputs\": %d, \"multi_driven\": \
     %d, \"transfers\": %d}"
    (Milo_lint.Diagnostic.json_escape name)
    s.sum_comps s.sum_nets s.sum_const0 s.sum_const1 s.sum_stuck_pins
    s.sum_dead_comps s.sum_unobservable_comps s.sum_floating_inputs
    s.sum_multi_driven s.sum_transfers

let pp_summary ppf s =
  Format.fprintf ppf
    "%d comps, %d nets: %d const (%d low, %d high), %d stuck pins, %d dead \
     comps, %d unobservable comps, %d floating inputs, %d multi-driven nets"
    s.sum_comps s.sum_nets (s.sum_const0 + s.sum_const1) s.sum_const0
    s.sum_const1 s.sum_stuck_pins s.sum_dead_comps s.sum_unobservable_comps
    s.sum_floating_inputs s.sum_multi_driven
