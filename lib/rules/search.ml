(* SOCRATES-style lookahead: a depth-first search tree whose nodes are
   circuit states and whose arcs are rule applications, bounded by the
   metarule control parameters of [CoBa85]:

     B       — breadth: sons per node
     D_max   — depth of the search tree
     D_app   — how many moves of the best sequence are executed
     N       — neighbourhood: rule sites must touch a component within
               path distance N of the first move's site
     Δcost   — maximum cost increase tolerated for a single move

   Backtracking restores the circuit through the change log. *)

module D = Milo_netlist.Design

type params = {
  b : int;
  d_max : int;
  d_app : int;
  n_hood : int;  (* 0 = unrestricted *)
  delta_cost : float;
}

let default_params = { b = 3; d_max = 3; d_app = 1; n_hood = 0; delta_cost = 10.0 }

(* Component ids within [n] hops of the seed components. *)
let neighbourhood ctx seeds n =
  let design = ctx.Rule.design in
  let visited = Hashtbl.create 32 in
  let rec expand frontier depth =
    if depth > n then ()
    else begin
      let next = ref [] in
      List.iter
        (fun cid ->
          if not (Hashtbl.mem visited cid) then begin
            Hashtbl.replace visited cid ();
            match D.comp_opt design cid with
            | None -> ()
            | Some c ->
                Hashtbl.iter
                  (fun _pin nid ->
                    match D.net_opt design nid with
                    | None -> ()
                    | Some net ->
                        List.iter
                          (fun (cid', _) ->
                            if not (Hashtbl.mem visited cid') then
                              next := cid' :: !next)
                          net.D.npins)
                  c.D.conns
          end)
        frontier;
      expand !next (depth + 1)
    end
  in
  expand seeds 0;
  visited

type stats = { mutable nodes : int; mutable evals : int }

(* Candidate moves at the current state. *)
let moves ctx rules ~allowed =
  List.concat_map
    (fun (r : Rule.t) ->
      List.filter_map
        (fun (site : Rule.site) ->
          let ok =
            match allowed with
            | None -> true
            | Some tbl ->
                List.exists (fun cid -> Hashtbl.mem tbl cid) site.Rule.site_comps
          in
          if ok then Some (r, site) else None)
        (r.Rule.find ctx))
    rules

(* Depth-first search returning the cost of the best reachable state and
   the move sequence to it.  The circuit is restored before returning.
   The [budget] bounds the otherwise-unbounded lookahead: every
   candidate evaluation counts against it, and an exhausted budget
   prunes the remaining tree (the search degrades to best-so-far). *)
let search ?(params = default_params) ?stats ?budget ctx ~cost ~cleanups rules
    =
  let st = match stats with Some s -> s | None -> { nodes = 0; evals = 0 } in
  let nodes0 = st.nodes and evals0 = st.evals in
  let exhausted () =
    match budget with Some b -> Budget.exhausted b | None -> false
  in
  let root_cost = cost () in
  (* Order candidate moves by immediate gain and keep the best B. *)
  let ranked ~allowed =
    let cands = moves ctx rules ~allowed in
    let scored =
      List.filter_map
        (fun (r, site) ->
          st.evals <- st.evals + 1;
          match Engine.evaluate ?budget ctx ~cost ~cleanups r site with
          | None -> None
          | Some gain ->
              if -.gain > params.delta_cost then None else Some (gain, r, site))
        cands
    in
    let sorted = List.sort (fun (a, _, _) (b, _, _) -> compare b a) scored in
    List.filteri (fun i _ -> i < params.b) sorted
  in
  let rec dfs depth ~allowed current_cost =
    st.nodes <- st.nodes + 1;
    if depth >= params.d_max || exhausted () then (current_cost, [])
    else
      let best = ref (current_cost, []) in
      List.iter
        (fun (_, (r : Rule.t), site) ->
          if (not (exhausted ())) && Rule.site_alive ctx site then begin
            let log = D.new_log () in
            if Engine.guarded_apply ctx r site log then begin
              Engine.run_cleanups ctx cleanups log;
              match Engine.measure_step ctx log with
              | Engine.Measure_failed -> D.undo ctx.Rule.design log
              | step ->
                  let c = cost () in
                  let allowed' =
                    match allowed with
                    | Some _ -> allowed
                    | None ->
                        if params.n_hood > 0 then
                          Some
                            (neighbourhood ctx site.Rule.site_comps
                               params.n_hood)
                        else None
                  in
                  let sub_cost, sub_moves = dfs (depth + 1) ~allowed:allowed' c in
                  let total = Float.min c sub_cost in
                  if total < fst !best then
                    best :=
                      (total, (r, site) :: (if sub_cost < c then sub_moves else []));
                  D.undo ctx.Rule.design log;
                  Engine.measure_drop ctx step
            end
            else D.undo ctx.Rule.design log
          end)
        (ranked ~allowed);
      !best
  in
  let best_cost, seq = dfs 0 ~allowed:None root_cost in
  if Milo_trace.Trace.enabled () then begin
    Milo_trace.Trace.count "search.nodes" (st.nodes - nodes0);
    Milo_trace.Trace.count "search.evals" (st.evals - evals0)
  end;
  if best_cost >= root_cost -. 1e-9 || seq = [] then None
  else begin
    (* Execute the first D_app moves of the winning sequence.  Later
       moves assumed the edits of earlier ones, so the first move that
       no longer applies (dead site or failed re-application) aborts
       the rest of the sequence instead of executing it against a state
       it was never evaluated on. *)
    let rec exec k = function
      | [] -> ()
      | (r, site) :: rest ->
          if k < params.d_app && Rule.site_alive ctx site then begin
            let log = D.new_log () in
            if Engine.guarded_apply ctx r site log then begin
              Engine.run_cleanups ctx cleanups log;
              Engine.measure_keep ctx (Engine.measure_step ctx log);
              D.commit ~label:r.Rule.rule_name ~design:ctx.Rule.design log;
              (match budget with Some b -> Budget.step b | None -> ());
              if Milo_trace.Trace.enabled () then
                Milo_trace.Trace.emit
                  (Milo_trace.Trace.Search_decision
                     {
                       rule = r.Rule.rule_name;
                       site = site.Rule.descr;
                       depth = k;
                       gain = root_cost -. best_cost;
                     });
              exec (k + 1) rest
            end
            else D.undo ctx.Rule.design log
          end
    in
    exec 0 seq;
    Some (root_cost -. cost ())
  end

(* --- Parallel lookahead ---------------------------------------------- *)

module Pool = Milo_parallel.Pool
module Exec = Milo_parallel.Exec

(* Budget-free depth-first search for an oracle worker: the same tree
   discipline as [search]'s inner [dfs], on a forked context, with no
   shared-budget charging (the coordinator charges the merged eval
   counts deterministically afterwards).  Cancellation still reaches
   it through [Engine.evaluate]/[Engine.guarded_apply]'s poll
   points. *)
let worker_dfs ~params ctx ~cost ~cleanups rules st =
  let ranked ~allowed =
    let cands = moves ctx rules ~allowed in
    let scored =
      List.filter_map
        (fun (r, site) ->
          st.evals <- st.evals + 1;
          match Engine.evaluate ctx ~cost ~cleanups r site with
          | None -> None
          | Some gain ->
              if -.gain > params.delta_cost then None else Some (gain, r, site))
        cands
    in
    let sorted = List.sort (fun (a, _, _) (b, _, _) -> compare b a) scored in
    List.filteri (fun i _ -> i < params.b) sorted
  in
  let rec dfs depth ~allowed current_cost =
    st.nodes <- st.nodes + 1;
    if depth >= params.d_max then (current_cost, [])
    else
      let best = ref (current_cost, []) in
      List.iter
        (fun (_, (r : Rule.t), site) ->
          if Rule.site_alive ctx site then begin
            let log = D.new_log () in
            if Engine.guarded_apply ctx r site log then begin
              Engine.run_cleanups ctx cleanups log;
              match Engine.measure_step ctx log with
              | Engine.Measure_failed -> D.undo ctx.Rule.design log
              | step ->
                  let c = cost () in
                  let allowed' =
                    match allowed with
                    | Some _ -> allowed
                    | None ->
                        if params.n_hood > 0 then
                          Some
                            (neighbourhood ctx site.Rule.site_comps
                               params.n_hood)
                        else None
                  in
                  let sub_cost, sub_moves = dfs (depth + 1) ~allowed:allowed' c in
                  let total = Float.min c sub_cost in
                  if total < fst !best then
                    best :=
                      (total, (r, site) :: (if sub_cost < c then sub_moves else []));
                  D.undo ctx.Rule.design log;
                  Engine.measure_drop ctx step
            end
            else D.undo ctx.Rule.design log
          end)
        (ranked ~allowed);
      !best
  in
  dfs

(* One parallel lookahead step.  Two fan-outs, both merged in
   submission order so the result is independent of scheduling:

   1. root ranking — one supervised task per rule scores that rule's
      sites on a forked snapshot; the coordinator assembles the scored
      list in (rule index, site ordinal) order and ranks it with the
      same stable sort and breadth cut as the sequential search;
   2. branch exploration — one supervised task per ranked root move
      applies the move on a fresh fork and runs the remaining subtree
      there; the coordinator folds the branch results in rank order
      with the sequential fold, so ties break identically.

   Only the winning sequence's first D_app moves are then re-applied
   authoritatively on the coordinator — trace events, budget steps and
   provenance all flow from that single path.  A faulting task
   quarantines its rule and costs exactly its own candidates. *)
let search_par ?(params = default_params) ?stats ?budget ~exec ~cost_factory
    ctx ~cost ~cleanups rules =
  let st = match stats with Some s -> s | None -> { nodes = 0; evals = 0 } in
  let nodes0 = st.nodes and evals0 = st.evals in
  if match budget with Some b -> Budget.exhausted b | None -> false then None
  else begin
    let root_cost = cost () in
    (* Fan-out 1: score the root moves, one task per rule. *)
    let rules_arr = Array.of_list rules in
    let rank_tasks =
      Array.to_list rules_arr
      |> List.map (fun (r : Rule.t) () ->
             Engine.worker_task (fun () ->
                 let wctx = Rule.fork_context ctx in
                 let wcost = cost_factory wctx in
                 let wst = { nodes = 0; evals = 0 } in
                 let sites =
                   if Engine.is_quarantined r.Rule.rule_name then []
                   else r.Rule.find wctx
                 in
                 let scored =
                   List.map
                     (fun site ->
                       wst.evals <- wst.evals + 1;
                       match Engine.evaluate wctx ~cost:wcost ~cleanups r site with
                       | None -> None
                       | Some gain ->
                           if -.gain > params.delta_cost then None
                           else Some (gain, site))
                     sites
                 in
                 (scored, wst.evals)))
    in
    let rank_out = Exec.map exec rank_tasks in
    let scored = ref [] in
    Array.iteri
      (fun ti outcome ->
        let r = rules_arr.(ti) in
        match outcome with
        | Pool.Done ((gains, evals), fails) ->
            Engine.import_failures fails;
            st.evals <- st.evals + evals;
            (match budget with
            | Some b -> for _ = 1 to evals do Budget.eval b done
            | None -> ());
            List.iter
              (function
                | Some (gain, site) -> scored := (gain, r, site) :: !scored
                | None -> ())
              gains
        | Pool.Task_failed fault ->
            Engine.note_failure_named ~reason:Engine.Raised r.Rule.rule_name
              ("parallel task: " ^ Pool.fault_message fault))
      rank_out;
    let sorted =
      List.sort (fun (a, _, _) (b, _, _) -> compare b a) (List.rev !scored)
    in
    let ranked = List.filteri (fun i _ -> i < params.b) sorted in
    (* Fan-out 2: explore each surviving root branch on its own fork. *)
    let ranked_arr = Array.of_list ranked in
    let branch_tasks =
      Array.to_list ranked_arr
      |> List.map (fun (_, (r : Rule.t), site) () ->
             Engine.worker_task (fun () ->
                 let wctx = Rule.fork_context ctx in
                 let wcost = cost_factory wctx in
                 let wst = { nodes = 0; evals = 0 } in
                 if not (Rule.site_alive wctx site) then None
                 else begin
                   let log = D.new_log () in
                   if Engine.guarded_apply wctx r site log then begin
                     Engine.run_cleanups wctx cleanups log;
                     match Engine.measure_step wctx log with
                     | Engine.Measure_failed -> None
                     | _step ->
                         let c = wcost () in
                         let allowed' =
                           if params.n_hood > 0 then
                             Some
                               (neighbourhood wctx site.Rule.site_comps
                                  params.n_hood)
                           else None
                         in
                         let sub_cost, sub_moves =
                           worker_dfs ~params wctx ~cost:wcost ~cleanups rules
                             wst 1 ~allowed:allowed' c
                         in
                         Some (c, sub_cost, sub_moves, wst.nodes, wst.evals)
                   end
                   else None
                 end))
    in
    let branch_out = Exec.map exec branch_tasks in
    st.nodes <- st.nodes + 1;
    let best = ref (root_cost, []) in
    Array.iteri
      (fun bi outcome ->
        let _, (r : Rule.t), site = ranked_arr.(bi) in
        match outcome with
        | Pool.Done (res, fails) -> (
            Engine.import_failures fails;
            match res with
            | None -> ()
            | Some (c, sub_cost, sub_moves, nodes, evals) ->
                st.nodes <- st.nodes + nodes;
                st.evals <- st.evals + evals;
                (match budget with
                | Some b -> for _ = 1 to evals do Budget.eval b done
                | None -> ());
                let total = Float.min c sub_cost in
                if total < fst !best then
                  best :=
                    ( total,
                      (r, site) :: (if sub_cost < c then sub_moves else []) ))
        | Pool.Task_failed fault ->
            Engine.note_failure_named ~reason:Engine.Raised r.Rule.rule_name
              ("parallel task: " ^ Pool.fault_message fault))
      branch_out;
    let best_cost, seq = !best in
    if Milo_trace.Trace.enabled () then begin
      Milo_trace.Trace.count "search.nodes" (st.nodes - nodes0);
      Milo_trace.Trace.count "search.evals" (st.evals - evals0)
    end;
    if best_cost >= root_cost -. 1e-9 || seq = [] then None
    else begin
      (* Authoritative execution of the winning prefix, identical to
         the sequential path. *)
      let rec exec_moves k = function
        | [] -> ()
        | ((r : Rule.t), site) :: rest ->
            if k < params.d_app && Rule.site_alive ctx site then begin
              let log = D.new_log () in
              if Engine.guarded_apply ctx r site log then begin
                Engine.run_cleanups ctx cleanups log;
                Engine.measure_keep ctx (Engine.measure_step ctx log);
                D.commit ~label:r.Rule.rule_name ~design:ctx.Rule.design log;
                (match budget with Some b -> Budget.step b | None -> ());
                if Milo_trace.Trace.enabled () then
                  Milo_trace.Trace.emit
                    (Milo_trace.Trace.Search_decision
                       {
                         rule = r.Rule.rule_name;
                         site = site.Rule.descr;
                         depth = k;
                         gain = root_cost -. best_cost;
                       });
                exec_moves (k + 1) rest
              end
              else D.undo ctx.Rule.design log
            end
      in
      exec_moves 0 seq;
      Some (root_cost -. cost ())
    end
  end

(* Run lookahead steps until no improving sequence remains, the step
   ceiling is reached, or the budget is exhausted. *)
let run ?(params = default_params) ?(max_steps = 200) ?stats ?budget ctx ~cost
    ~cleanups rules =
  let stop n =
    n >= max_steps
    || match budget with Some b -> Budget.exhausted b | None -> false
  in
  let rec go n total =
    if stop n then total
    else
      match search ~params ?stats ?budget ctx ~cost ~cleanups rules with
      | Some gain when gain > 1e-9 -> go (n + 1) (total +. gain)
      | Some _ | None -> total
  in
  go 0 0.0

(* [run] with a parallel execution plan: [Sequential] is the legacy
   path byte-for-byte; [Inline] and [Pooled] share [search_par]. *)
let run_par ?(params = default_params) ?(max_steps = 200) ?stats ?budget ~exec
    ~cost_factory ctx ~cost ~cleanups rules =
  match (exec : Exec.t) with
  | Exec.Sequential ->
      run ~params ~max_steps ?stats ?budget ctx ~cost ~cleanups rules
  | Exec.Inline _ | Exec.Pooled _ ->
      let stop n =
        n >= max_steps
        || match budget with Some b -> Budget.exhausted b | None -> false
      in
      let rec go n total =
        if stop n then total
        else
          match
            search_par ~params ?stats ?budget ~exec ~cost_factory ctx ~cost
              ~cleanups rules
          with
          | Some gain when gain > 1e-9 -> go (n + 1) (total +. gain)
          | Some _ | None -> total
      in
      go 0 0.0
