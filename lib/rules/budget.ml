(* Search budgets: wall-clock deadline + step/evaluation ceilings, with
   sticky exhaustion so a report can say *why* a pass stopped early. *)

type t = {
  deadline : float option;  (* absolute, Unix.gettimeofday *)
  max_steps : int option;
  max_evals : int option;
  started : float;
  mutable steps : int;
  mutable evals : int;
  mutable flagged : bool;
}

type status = {
  steps_used : int;
  evals_used : int;
  elapsed : float;
  budget_exhausted : bool;
}

let make ?timeout ?max_steps ?max_evals () =
  let now = Unix.gettimeofday () in
  {
    deadline = Option.map (fun s -> now +. s) timeout;
    max_steps;
    max_evals;
    started = now;
    steps = 0;
    evals = 0;
    flagged = false;
  }

let unlimited () = make ()

(* Re-arm a budget from recorded consumption (journal resume): the
   counters start at the recorded values and the deadline is shortened
   by the time the interrupted run already spent, so the resumed run
   gets exactly the remainder, not a fresh allowance. *)
let resume ?timeout ?max_steps ?max_evals ~steps ~evals ~elapsed () =
  let now = Unix.gettimeofday () in
  {
    deadline = Option.map (fun s -> now +. s -. elapsed) timeout;
    max_steps;
    max_evals;
    started = now -. elapsed;
    steps;
    evals;
    flagged = false;
  }

let limits t =
  (Option.map (fun d -> d -. t.started) t.deadline, t.max_steps, t.max_evals)

(* The absolute deadline, for the parallel runtime: supervised tasks
   inherit it so a straggler is cancelled at the same wall-clock
   instant the budget itself would flag exhaustion. *)
let deadline_time t = t.deadline

let step t = t.steps <- t.steps + 1
let eval t = t.evals <- t.evals + 1

let over limit used = match limit with Some l -> used >= l | None -> false

let exhausted t =
  if t.flagged then true
  else begin
    let hit =
      over t.max_steps t.steps || over t.max_evals t.evals
      || match t.deadline with
         | Some d -> Unix.gettimeofday () >= d
         | None -> false
    in
    if hit then begin
      t.flagged <- true;
      (* Exactly one event per budget, on the sticky transition. *)
      if Milo_trace.Trace.enabled () then
        Milo_trace.Trace.emit
          (Milo_trace.Trace.Budget_exhausted
             {
               steps = t.steps;
               evals = t.evals;
               elapsed = Unix.gettimeofday () -. t.started;
             })
    end;
    hit
  end

let status t =
  {
    steps_used = t.steps;
    evals_used = t.evals;
    elapsed = Unix.gettimeofday () -. t.started;
    budget_exhausted = t.flagged;
  }

let pp_status ppf s =
  Format.fprintf ppf "%d steps, %d evals, %.2fs%s" s.steps_used s.evals_used
    s.elapsed
    (if s.budget_exhausted then " (budget exhausted)" else "")
