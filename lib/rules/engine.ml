(* The recognize-act engine.

   Three control disciplines from the paper's survey, all over the same
   rule representation:

   - [ops_pass]: strictly rule-based control with OPS-style conflict
     resolution (refraction, recency, specificity) — the R1 / Logic
     Consultant discipline.  No measurement, no backtracking.
   - [greedy_pass]: measure-the-gain control — apply a candidate,
     run cleanup rules, measure the cost function, undo, and commit the
     best candidate (Logic Consultant's gain evaluation with its
     one-rule cleanup lookahead).
   - deeper lookahead lives in [Search] (SOCRATES). *)

module D = Milo_netlist.Design
module Trace = Milo_trace.Trace
module Prov = Milo_provenance.Provenance
module Pool = Milo_parallel.Pool
module Exec = Milo_parallel.Exec

type measure = Milo_measure.Measure.totals = {
  delay : float;
  area : float;
  power : float;
}

let pp_measure ppf m =
  Format.fprintf ppf "delay=%.2fns area=%.1fcells power=%.1fmW" m.delay m.area
    m.power

(* Cost function over measurements; lower is better. *)
type objective = measure -> float

let weighted ?(w_delay = 1.0) ?(w_area = 1.0) ?(w_power = 0.2) () m =
  (w_delay *. m.delay) +. (w_area *. m.area) +. (w_power *. m.power)

let measure_fn ctx ~input_arrivals () =
  let env name = Milo_library.Technology.find ctx.Rule.tech name in
  let sta = Milo_timing.Sta.analyze ~input_arrivals env ctx.Rule.design in
  {
    delay = Milo_timing.Sta.worst_delay sta;
    area = Milo_estimate.Estimate.area env ctx.Rule.design;
    power = Milo_estimate.Estimate.power env ctx.Rule.design;
  }

(* --- Debug linting ---------------------------------------------------- *)

(* When enabled, the structural lint invariants (connectivity
   consistency, single drivers, valid references, no combinational
   loops) are re-checked after every rule application, so an unsound
   rewrite is caught at the offending rule instead of three flow stages
   later.  Costs a full design scan per application — debugging only. *)

exception Lint_violation of string * string

let () =
  Printexc.register_printer (function
    | Lint_violation (rule, report) ->
        Some (Printf.sprintf "Lint_violation after rule %s:\n%s" rule report)
    | _ -> None)

let debug_lint = ref false
let set_debug_lint v = debug_lint := v

let lint_after ctx name =
  if !debug_lint then begin
    let is_sequential kind =
      match kind with
      | Milo_netlist.Types.Instance _ -> true
      | Milo_netlist.Types.Macro m -> (
          match Milo_library.Technology.find_opt ctx.Rule.tech m with
          | Some mac -> Milo_library.Macro.is_sequential mac
          | None -> false)
      | k -> Milo_netlist.Types.is_sequential_kind k
    in
    let diags =
      Milo_lint.Lint.run ~resolve:ctx.Rule.resolve ~is_sequential
        ~rules:Milo_lint.Lint.structural_rules ctx.Rule.design
    in
    match Milo_lint.Lint.errors diags with
    | [] -> ()
    | errs ->
        raise
          (Lint_violation
             ( name,
               String.concat "\n"
                 (List.map Milo_lint.Diagnostic.to_string errs) ))
  end

(* --- Rule quarantine -------------------------------------------------- *)

(* Transactional rule application for the measured (greedy / lookahead)
   disciplines: a rule whose [apply] raises — or whose result fails the
   debug-lint invariants — is rolled back through its own change log and
   quarantined for the rest of the run instead of aborting the pass.
   The strictly rule-based OPS disciplines keep the raising behaviour:
   they are the debugging surface where a loud failure is wanted. *)

(* Why a rule was quarantined: its [apply]/[find] raised, or the
   semantic guard caught it changing the function of its site (a
   miscompile that was reverted).  The distinction matters downstream —
   a raising rule is a crash bug, a miscompiling one is a correctness
   bug that would have shipped silently. *)
type reason = Raised | Miscompiled

let reason_name = function Raised -> "raised" | Miscompiled -> "miscompiled"

(* Per rule: failure count, the first trapped failure message and why —
   the count says how noisy the rule was, the message says why it
   first went wrong. *)
let quarantine : (string, int * string * reason) Hashtbl.t = Hashtbl.create 16

(* Oracle-worker discipline for the parallel fan-out: while candidate
   evaluations run on forked design snapshots — on pool domains or
   inline on the coordinator — the global quarantine table is
   read-only.  A worker that traps a failure defers it into a
   domain-local buffer; the coordinator imports the buffers in task
   (= submission) order after the fan-out, so first-failure messages
   and quarantine trace events are deterministic regardless of which
   domain trapped what when. *)
type deferred_failure = { df_rule : string; df_msg : string; df_reason : reason }

let worker_key : deferred_failure list ref option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let in_worker () = Domain.DLS.get worker_key <> None

let quarantine_reset () = Hashtbl.reset quarantine

let is_quarantined name =
  Hashtbl.mem quarantine name
  ||
  (* A failure trapped earlier in this worker task quarantines the rule
     for the task's remaining sites, mirroring what the sequential pass
     would do globally. *)
  (match Domain.DLS.get worker_key with
  | Some buf -> List.exists (fun d -> d.df_rule = name) !buf
  | None -> false)

(* Full quarantine image, for journal checkpoints: a resumed run
   restores it so rules trapped before the crash stay trapped. *)
let quarantine_dump () =
  Hashtbl.fold
    (fun name (n, msg, reason) acc -> (name, n, msg, reason) :: acc)
    quarantine []
  |> List.sort compare

let quarantine_restore dump =
  Hashtbl.reset quarantine;
  List.iter
    (fun (name, n, msg, reason) -> Hashtbl.replace quarantine name (n, msg, reason))
    dump

let quarantined () =
  Hashtbl.fold (fun name (n, _, _) acc -> (name, n) :: acc) quarantine []
  |> List.sort compare

let quarantined_errors () =
  Hashtbl.fold (fun name (_, msg, _) acc -> (name, msg) :: acc) quarantine []
  |> List.sort compare

let quarantined_reasons () =
  Hashtbl.fold (fun name (_, _, r) acc -> (name, r) :: acc) quarantine []
  |> List.sort compare

let note_failure_named ~reason name msg =
  match Domain.DLS.get worker_key with
  | Some buf -> buf := { df_rule = name; df_msg = msg; df_reason = reason } :: !buf
  | None -> (
      match Hashtbl.find_opt quarantine name with
      | Some (n, m, rs) -> Hashtbl.replace quarantine name (n + 1, m, rs)
      | None ->
          Hashtbl.replace quarantine name (1, msg, reason);
          if Trace.enabled () then
            Trace.emit
              (Trace.Rule_quarantined { rule = name; failures = 1; message = msg }))

let note_failure_msg ~reason (r : Rule.t) msg =
  note_failure_named ~reason r.Rule.rule_name msg

let note_failure (r : Rule.t) exn =
  note_failure_msg ~reason:Raised r (Printexc.to_string exn)

(* Run [f] as an oracle worker: quarantine writes are deferred into a
   local buffer (returned oldest-first), and tracing / provenance are
   suppressed on this domain, so a task behaves identically whether it
   runs inline on the coordinator or on a pool domain.  The rule guard
   never runs in a worker — see [guard_snapshot]. *)
let worker_task f =
  let buf = ref [] in
  let saved = Domain.DLS.get worker_key in
  Domain.DLS.set worker_key (Some buf);
  Fun.protect
    ~finally:(fun () -> Domain.DLS.set worker_key saved)
    (fun () ->
      let v = Trace.without (fun () -> Prov.without f) in
      (v, List.rev_map (fun d -> (d.df_rule, d.df_msg, d.df_reason)) !buf))

(* Coordinator side: fold a worker's deferred failures into the global
   quarantine.  Call in task order. *)
let import_failures fails =
  List.iter (fun (rule, msg, reason) -> note_failure_named ~reason rule msg) fails

(* --- Semantic rule guard ----------------------------------------------- *)

(* Cone-local equivalence checking of individual rule applications
   (the transactional tier of the semantic guard).  Before an apply,
   the functions of the site's output nets are snapshotted as truth
   vectors over their fan-in cone leaves; after the apply the same
   nets are re-evaluated over the same leaf assignments.  Any
   difference means the rule changed observable behaviour: the edits
   are rolled back through the sub-log and the rule is quarantined
   with reason [Miscompiled].

   The check is conservative: a net whose new function can no longer
   be expressed over the old leaves (the rewrite restructured the
   region, a leaf vanished, a non-expandable driver appeared) is
   skipped, never reported — false positives would quarantine sound
   rules.  Stage guards in the flow backstop whatever is skipped. *)

module Guard = Milo_guard.Guard

type rule_guard_state = {
  rg_policy : Guard.policy;
  rg_budget : Budget.t option;
  rg_stats : Guard.stats;
  rg_seen : (string, unit) Hashtbl.t;  (* rules checked at least once *)
  mutable rg_tick : int;  (* check opportunities, for sampling *)
}

(* Domain-local: the flow arms the guard on the coordinating domain;
   worker domains never see it (their [guard_snapshot] short-circuits
   anyway), so its mutable sampling position is single-domain state
   and needs no locking. *)
let rule_guard_key : rule_guard_state option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let rule_guard () = Domain.DLS.get rule_guard_key

let set_rule_guard ?budget ?stats policy =
  match policy with
  | Guard.Off -> rule_guard () := None
  | Guard.Sampled | Guard.Full ->
      rule_guard ()
      := Some
           {
             rg_policy = policy;
             rg_budget = budget;
             rg_stats =
               (match stats with Some s -> s | None -> Guard.fresh_stats ());
             rg_seen = Hashtbl.create 16;
             rg_tick = 0;
           }

let clear_rule_guard () = rule_guard () := None
let rule_guard_stats () = Option.map (fun g -> g.rg_stats) !(rule_guard ())

(* Journal-resume support: the [Sampled] tier's position (tick counter
   and first-application set) is part of the run's deterministic state
   — a resumed run must re-enter the sampling sequence exactly where
   the interrupted one left off, or its guard counters diverge from
   the uninterrupted run's. *)
let guard_sample_state () =
  Option.map
    (fun g ->
      ( g.rg_tick,
        Hashtbl.fold (fun n () acc -> n :: acc) g.rg_seen []
        |> List.sort compare ))
    !(rule_guard ())

let restore_guard_sample_state tick seen =
  match !(rule_guard ()) with
  | None -> ()
  | Some g ->
      g.rg_tick <- tick;
      Hashtbl.reset g.rg_seen;
      List.iter (fun n -> Hashtbl.replace g.rg_seen n ()) seen

(* --- Certified rules --------------------------------------------------- *)

(* Rules holding a static Certified certificate (proved sound offline
   by [Milo_absint.Certify] over exhaustive cone enumeration).  Their
   applications skip the dynamic cone re-simulation: the per-apply
   Full-guard cost collapses to the flow's stage-boundary checks.  The
   engine only stores names — certification itself lives above this
   layer — and the store is global like the quarantine: the flow
   installs it per run.  Quarantine still dominates: a certified rule
   that raises is quarantined like any other. *)
(* An immutable set behind an atomic, not a hashtable: worker domains
   read it during parallel candidate evaluation while the coordinator
   could in principle be between runs — a torn hashtable read would be
   undefined behaviour, an atomic set swap is always coherent. *)
module SS = Set.Make (String)

let certified : SS.t Atomic.t = Atomic.make SS.empty

let set_certified names = Atomic.set certified (SS.of_list names)
let clear_certified () = Atomic.set certified SS.empty
let is_certified name = SS.mem name (Atomic.get certified)
let certified_rules () = SS.elements (Atomic.get certified)

(* Sampling interval for the [Sampled] tier: the first application of
   each rule is always checked (a systematically wrong rule is caught
   immediately), then every Nth opportunity across all rules. *)
let sample_interval = 16

let should_check g (r : Rule.t) =
  match g.rg_policy with
  | Guard.Off -> false
  | Guard.Full -> true
  | Guard.Sampled ->
      if
        match g.rg_budget with
        | Some b -> Budget.exhausted b
        | None -> false
      then false
      else begin
        g.rg_tick <- g.rg_tick + 1;
        if Hashtbl.mem g.rg_seen r.Rule.rule_name then
          g.rg_tick mod sample_interval = 0
        else begin
          Hashtbl.replace g.rg_seen r.Rule.rule_name ();
          true
        end
      end

let guard_max_leaves = 8

(* Output nets of the site's components: the signals whose function
   the rule may legitimately restructure but must not change. *)
let site_out_nets ctx (site : Rule.site) =
  List.concat_map
    (fun cid ->
      match D.comp_opt ctx.Rule.design cid with
      | None -> []
      | Some c ->
          Hashtbl.fold
            (fun pin nid acc ->
              match
                D.pin_dir ~resolve:ctx.Rule.resolve ctx.Rule.design cid pin
              with
              | Milo_netlist.Types.Output -> nid :: acc
              | Milo_netlist.Types.Input -> acc
              | exception _ -> acc)
            c.D.conns [])
    site.Rule.site_comps
  |> List.sort_uniq compare

(* Packed truth vectors: chunk [c] of the array holds minterms
   [c*lanes .. c*lanes+lanes-1], lane [l] in bit position [l].  Leaf
   [i]'s input word for chunk [c] therefore has bit [l] equal to bit
   [i] of minterm [c*lanes + l]. *)
let lanes = Milo_sim.Eval.Packed.lanes

let leaf_words leaves c =
  let base = c * lanes in
  List.mapi
    (fun i leaf ->
      let w = ref 0 in
      for l = 0 to lanes - 1 do
        if (base + l) lsr i land 1 <> 0 then w := !w lor (1 lsl l)
      done;
      (leaf, !w))
    leaves

let chunks_for n = ((1 lsl n) + lanes - 1) / lanes

(* Truth vectors are a function of the cone's structure alone, so
   structurally identical cones — ubiquitous in mapped datapaths —
   share one packed sweep through a digest-keyed cache.  Keys include
   the library name: cone digests intern macro *names*, whose
   behavior is per-technology. *)
type tv_state = {
  tv_tbl : (string, int array) Hashtbl.t;
  mutable tv_hits : int;
  mutable tv_misses : int;
}

(* Domain-local: the guard only runs on the coordinating domain today,
   but a shared hashtable mutated from a hot path is exactly the kind
   of latent hazard the parallel runtime must not inherit — per-domain
   caches need no locking and keep the bound per-domain too. *)
let tv_key : tv_state Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { tv_tbl = Hashtbl.create 256; tv_hits = 0; tv_misses = 0 })

let tv_cache_bound = 4096

let cone_truth_vector ctx cone =
  let tv_cache = Domain.DLS.get tv_key in
  let key =
    Milo_library.Technology.name ctx.Rule.tech ^ ":" ^ Cone.digest ctx cone
  in
  match Hashtbl.find_opt tv_cache.tv_tbl key with
  | Some tv ->
      tv_cache.tv_hits <- tv_cache.tv_hits + 1;
      tv
  | None ->
      tv_cache.tv_misses <- tv_cache.tv_misses + 1;
      let n = List.length cone.Cone.leaves in
      let tv =
        Array.init (chunks_for n) (fun c ->
            Cone.eval_packed ctx cone (leaf_words cone.Cone.leaves c))
      in
      if Hashtbl.length tv_cache.tv_tbl >= tv_cache_bound then
        Hashtbl.reset tv_cache.tv_tbl;
      Hashtbl.replace tv_cache.tv_tbl key tv;
      tv

(* Truth vectors of the verifiable site outputs over their cone
   leaves.  Cones with no components (the driver is not an expandable
   combinational macro — e.g. micro-level kinds) are unverifiable
   here and left to the stage guard. *)
let snapshot_cones ctx nets =
  List.filter_map
    (fun nid ->
      match Cone.extract ctx ~max_leaves:guard_max_leaves nid with
      | Some cone when cone.Cone.comps <> [] ->
          Some (nid, cone.Cone.leaves, cone_truth_vector ctx cone)
      | Some _ | None -> None)
    nets

exception Unverifiable

(* Evaluate [nid]'s post-apply function under a packed leaf
   assignment (one word = [lanes] vectors), expanding through
   combinational macro drivers.  A net that is neither assigned nor
   expandable — or a combinational cycle — makes the comparison
   meaningless: [Unverifiable]. *)
let eval_after ctx assignment nid0 =
  let memo = Hashtbl.create 16 in
  let visiting = Hashtbl.create 16 in
  let rec value nid =
    match Hashtbl.find_opt memo nid with
    | Some v -> v
    | None ->
        if Hashtbl.mem visiting nid then raise Unverifiable;
        Hashtbl.replace visiting nid ();
        let v =
          match List.assoc_opt nid assignment with
          | Some v -> v
          | None -> (
              match Cone.expandable ctx nid with
              | Some (c, m) ->
                  let pvs =
                    List.map
                      (fun pin ->
                        ( pin,
                          match D.connection ctx.Rule.design c.D.id pin with
                          | Some n -> value n
                          | None -> 0 ))
                      m.Milo_library.Macro.inputs
                  in
                  let outs = Milo_sim.Eval.Packed.macro_comb_outputs m pvs in
                  List.assoc (List.nth m.Milo_library.Macro.outputs 0) outs
              | None -> raise Unverifiable)
        in
        Hashtbl.remove visiting nid;
        Hashtbl.replace memo nid v;
        v
  in
  value nid0

(* Compare the snapshot against the post-apply design.  Returns a
   human-readable description of the first divergence, or [None] when
   every verifiable net kept its function. *)
let check_snapshot ctx snaps =
  let describe nid assignment =
    let net_name =
      match D.net_opt ctx.Rule.design nid with
      | Some n -> n.D.nname
      | None -> string_of_int nid
    in
    let asg =
      String.concat ", "
        (List.map
           (fun (l, v) ->
             let nm =
               match D.net_opt ctx.Rule.design l with
               | Some n -> n.D.nname
               | None -> string_of_int l
             in
             Printf.sprintf "%s=%d" nm (if v then 1 else 0))
           assignment)
    in
    Printf.sprintf "net %s changed function under {%s}" net_name asg
  in
  let rec nets = function
    | [] -> None
    | (nid, leaves, tv) :: rest ->
        if D.net_opt ctx.Rule.design nid = None then nets rest
        else begin
          let n = List.length leaves in
          let total = 1 lsl n in
          let rec vec c =
            if c >= Array.length tv then None
            else
              let base = c * lanes in
              let live = min lanes (total - base) in
              let mask = if live >= lanes then -1 else (1 lsl live) - 1 in
              let assignment = leaf_words leaves c in
              match eval_after ctx assignment nid with
              | v ->
                  let diff = (v lxor tv.(c)) land mask in
                  if diff = 0 then vec (c + 1)
                  else
                    (* First mismatching lane, as a scalar witness. *)
                    let l = ref 0 in
                    while diff land (1 lsl !l) = 0 do
                      incr l
                    done;
                    let m = base + !l in
                    Some
                      (describe nid
                         (List.mapi
                            (fun i leaf -> (leaf, m lsr i land 1 <> 0))
                            leaves))
              | exception Unverifiable -> None
          in
          match vec 0 with Some d -> Some d | None -> nets rest
        end
  in
  nets snaps

(* Guard verdict of the most recent [guard_snapshot] decision, for the
   provenance recorder.  Read by [greedy_step] immediately after the
   winning commit-time apply — before cleanups run their own applies
   and overwrite it. *)
let last_verdict_key : Prov.verdict ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref Prov.Unguarded)

let last_verdict () = Domain.DLS.get last_verdict_key

(* Snapshot decision for one application: [None] when no check should
   run (guard off, sampled out, or nothing verifiable at the site).

   Oracle workers never guard: their applications are scratch
   evaluations on forked snapshots whose results are discarded; only
   the coordinator's authoritative re-application of the merged winner
   is guarded (and ticks the sampling position), which is what keeps
   guard stats bit-identical across domain counts. *)
let guard_snapshot ctx r site =
  if in_worker () then begin
    last_verdict () := Prov.Unguarded;
    None
  end
  else
    match !(rule_guard ()) with
    | None ->
        last_verdict () := Prov.Unguarded;
        None
    | Some g ->
        if is_certified r.Rule.rule_name then begin
          g.rg_stats.Guard.rule_certified <- g.rg_stats.Guard.rule_certified + 1;
          last_verdict () := Prov.Certified;
          None
        end
        else if not (should_check g r) then begin
          g.rg_stats.Guard.rule_skipped <- g.rg_stats.Guard.rule_skipped + 1;
          last_verdict () := Prov.Skipped;
          None
        end
        else begin
          match snapshot_cones ctx (site_out_nets ctx site) with
          | [] ->
              g.rg_stats.Guard.rule_skipped <- g.rg_stats.Guard.rule_skipped + 1;
              last_verdict () := Prov.Skipped;
              None
          | snaps ->
              g.rg_stats.Guard.rule_checks <- g.rg_stats.Guard.rule_checks + 1;
              last_verdict () := Prov.Checked;
              Some (g, snaps)
        end

(* Match sites, treating a raising [find] as "no sites" (and
   quarantining the rule).  A quarantined rule matches nothing. *)
let guarded_find ctx (r : Rule.t) =
  if is_quarantined r.Rule.rule_name then []
  else
    match r.Rule.find ctx with
    | sites -> sites
    | exception ((Out_of_memory | Stack_overflow | Pool.Cancelled) as e) ->
        raise e
    | exception e ->
        note_failure r e;
        []

(* Apply into a private sub-log so a failure rolls back exactly this
   rule's edits; on success the sub-log is spliced (newest first) into
   the caller's log so the caller's undo/commit semantics are intact.

   When the rule guard is armed, a successful apply is additionally
   re-simulated over the touched cone: a semantic divergence is
   treated exactly like a raising apply — rolled back and quarantined
   — except the reason recorded is [Miscompiled]. *)
let guarded_apply ctx (r : Rule.t) site log =
  (* Cooperative cancellation point: inside a supervised parallel task
     this heartbeats and raises [Pool.Cancelled] past the deadline —
     before any edit, so the task's scratch snapshot is abandoned
     cleanly.  A no-op on the authoritative path. *)
  Pool.poll ();
  if is_quarantined r.Rule.rule_name then false
  else
    let snap = guard_snapshot ctx r site in
    let local = D.new_log () in
    match
      let ok = r.Rule.apply ctx site local in
      if ok then lint_after ctx r.Rule.rule_name;
      ok
    with
    | ok -> (
        match
          match (ok, snap) with
          | true, Some (_, snaps) -> check_snapshot ctx snaps
          | (true | false), _ -> None
        with
        | None ->
            log := !local @ !log;
            ok
        | Some detail ->
            D.undo ctx.Rule.design local;
            (match snap with
            | Some (g, _) ->
                g.rg_stats.Guard.rule_mismatches <-
                  g.rg_stats.Guard.rule_mismatches + 1
            | None -> ());
            note_failure_msg ~reason:Miscompiled r ("miscompile: " ^ detail);
            if Prov.enabled () then
              Prov.debit ~kind:"miscompile" ~rule:r.Rule.rule_name;
            if Trace.enabled () then
              Trace.emit
                (Trace.Rule_miscompiled
                   { rule = r.Rule.rule_name; site = site.Rule.descr; detail });
            false)
    | exception ((Out_of_memory | Stack_overflow) as e) -> raise e
    | exception Pool.Cancelled ->
        (* Not a rule failure: the task's deadline passed mid-apply.
           Undo this rule's edits and let the supervisor classify the
           task; the snapshot is discarded anyway. *)
        D.undo ctx.Rule.design local;
        raise Pool.Cancelled
    | exception e ->
        D.undo ctx.Rule.design local;
        note_failure r e;
        if Prov.enabled () then
          Prov.debit ~kind:"quarantine" ~rule:r.Rule.rule_name;
        false

(* Apply every applicable cleanup rule until none fires (bounded).  The
   Logic Consultant examines its high-priority rules after each regular
   rule application.  The budget counts successful applications only —
   dead or non-applying sites cost nothing — and once exhausted no
   further site is scanned. *)
let run_cleanups ctx cleanups log =
  let budget = ref (4 * (1 + D.num_comps ctx.Rule.design)) in
  let rec pass () =
    let fired =
      List.exists
        (fun (r : Rule.t) ->
          !budget > 0
          && List.exists
               (fun site ->
                 !budget > 0
                 && Rule.site_alive ctx site
                 && guarded_apply ctx r site log
                 && (decr budget;
                     true))
               (guarded_find ctx r))
        cleanups
    in
    if fired && !budget > 0 then pass ()
  in
  pass ()

(* --- Measurer lock-step ------------------------------------------------ *)

(* When the context carries an incremental measurer, every measured
   apply/undo/commit must move it in lock-step with the design.  The
   protocol: after applying a log, [measure_step]; then either undo the
   design and [measure_drop], or commit and [measure_keep].  A failed
   advance (e.g. the candidate state is unmeasurable) yields
   [Measure_failed]: dropping it is free, keeping it forces a full
   resync since the committed edits were never folded in. *)

type mstep =
  | No_measurer
  | Measured of Milo_measure.Measure.token
  | Measure_failed

let measure_step ctx log =
  match !(ctx.Rule.measurer) with
  | None -> No_measurer
  | Some m -> (
      match Milo_measure.Measure.advance m (D.entries log) with
      | tok -> Measured tok
      | exception
          (( Out_of_memory | Stack_overflow
           | Milo_measure.Measure.Divergence _ ) as e) ->
          raise e
      | exception _ -> Measure_failed)

let measure_drop ctx step =
  match (step, !(ctx.Rule.measurer)) with
  | Measured tok, Some m -> Milo_measure.Measure.retreat m tok
  | (No_measurer | Measure_failed | Measured _), _ -> ()

let measure_keep ctx step =
  match (step, !(ctx.Rule.measurer)) with
  | Measured tok, Some m -> Milo_measure.Measure.commit m tok
  | Measure_failed, Some m ->
      Milo_measure.Measure.resync ~reason:"failed-advance-committed" m
  | (No_measurer | Measure_failed | Measured _), _ -> ()

type application = {
  rule : Rule.t;
  site : Rule.site;
  gain : float;  (** cost decrease including cleanups *)
}

(* Snapshot the incremental measurer's totals as a trace cost — only
   meaningful (and only called) when tracing is on. *)
let trace_cost ctx =
  match !(ctx.Rule.measurer) with
  | None -> None
  | Some m ->
      let c = Milo_measure.Measure.current m in
      Some { Trace.delay = c.delay; area = c.area; power = c.power }

(* Compact site identity for the provenance recorder, computed before
   the apply rewrites the site: the matched description plus the
   hash-consed kind spec of every live site component.  Two structurally
   identical sites reached through different histories digest equal. *)
let site_digest ctx (site : Rule.site) =
  let b = Buffer.create 64 in
  Buffer.add_string b site.Rule.descr;
  List.iter
    (fun cid ->
      match D.comp_opt ctx.Rule.design cid with
      | Some c ->
          Buffer.add_char b '|';
          Buffer.add_string b (Milo_netlist.Hashcons.kind_spec c.D.kind)
      | None -> ())
    site.Rule.site_comps;
  Digest.to_hex (Digest.string (Buffer.contents b))

(* Candidate evaluation: apply rule + cleanups, measure, undo.  A cost
   function that fails on the candidate state (an unmappable or
   unmeasurable intermediate) rejects the candidate rather than
   aborting the pass — the design is restored first.

   When a tracer is installed, each evaluation is timed into the
   per-rule attribution table and the eval-latency histogram, and a
   rejected candidate emits a [Rule_refused] event naming the reason. *)
let evaluate ?budget ctx ~cost ~cleanups (r : Rule.t) site =
  Pool.poll ();
  match budget with
  | Some b when Budget.exhausted b -> None
  | _ ->
      (match budget with Some b -> Budget.eval b | None -> ());
      let traced = Trace.enabled () in
      let t0 = if traced then Unix.gettimeofday () else 0.0 in
      let finish ?reason result =
        if traced then begin
          let dt = Unix.gettimeofday () -. t0 in
          Trace.sample "engine.eval_us" (dt *. 1e6);
          (match result with
          | Some gain ->
              Trace.note_rule ~rule:r.Rule.rule_name ~dt ~gain ~outcome:`Eval
          | None ->
              Trace.note_rule ~rule:r.Rule.rule_name ~dt ~gain:0.0
                ~outcome:`Refused);
          match reason with
          | Some reason ->
              Trace.emit
                (Trace.Rule_refused
                   { rule = r.Rule.rule_name; site = site.Rule.descr; reason })
          | None -> ()
        end;
        result
      in
      let before = cost () in
      let log = D.new_log () in
      if not (guarded_apply ctx r site log) then begin
        D.undo ctx.Rule.design log;
        finish ~reason:"apply-failed" None
      end
      else begin
        run_cleanups ctx cleanups log;
        match measure_step ctx log with
        | Measure_failed ->
            (* The candidate state is unmeasurable incrementally (e.g.
               unmapped): reject it, nothing to retreat. *)
            D.undo ctx.Rule.design log;
            finish ~reason:"unmeasurable" None
        | step -> (
            match cost () with
            | after ->
                D.undo ctx.Rule.design log;
                measure_drop ctx step;
                finish (Some (before -. after))
            | exception ((Out_of_memory | Stack_overflow | Pool.Cancelled) as e)
              ->
                raise e
            | exception _ ->
                D.undo ctx.Rule.design log;
                measure_drop ctx step;
                finish ~reason:"cost-failed" None)
      end

(* Authoritative commit of a winning candidate: re-apply on the real
   design (under the rule guard), run cleanups, keep the measurer step,
   deposit the provenance note and commit.  Shared by the sequential
   and parallel greedy steps — in the parallel path this is the only
   place the winner touches the coordinator's design, so every
   observable side effect (trace, ledger, guard stats, journal entries)
   flows from the same code regardless of domain count. *)
let commit_app ?budget ctx ~cleanups (app : application) =
  let traced = Trace.enabled () in
  let prov = Prov.enabled () in
  let t0 = if traced then Unix.gettimeofday () else 0.0 in
  let before = if traced || prov then trace_cost ctx else None in
  let site = if prov then Some (site_digest ctx app.site) else None in
  let log = D.new_log () in
  if guarded_apply ctx app.rule app.site log then begin
    let verdict = !(last_verdict ()) in
    run_cleanups ctx cleanups log;
    measure_keep ctx (measure_step ctx log);
    (* Attribution note for the commit below: the measurer's totals
       are final here (cleanups measured, step kept), so [after] is
       exactly what the next kept application will see as [before]
       — the conservation invariant. *)
    if prov then
      Prov.pending ~design:ctx.Rule.design ~label:app.rule.Rule.rule_name
        ?site ~verdict ?before ?after:(trace_cost ctx) ();
    D.commit ~label:app.rule.Rule.rule_name ~design:ctx.Rule.design log;
    (match budget with Some b -> Budget.step b | None -> ());
    if traced then begin
      Trace.note_rule ~rule:app.rule.Rule.rule_name
        ~dt:(Unix.gettimeofday () -. t0)
        ~gain:app.gain ~outcome:`Applied;
      Trace.count "engine.applies" 1;
      Trace.emit ?before
        ?after:(trace_cost ctx)
        (Trace.Rule_applied
           {
             rule = app.rule.Rule.rule_name;
             site = app.site.Rule.descr;
             gain = app.gain;
           })
    end;
    Some app
  end
  else begin
    (* The winning rule failed on commit (it was just quarantined);
       everything it recorded is already rolled back. *)
    D.undo ctx.Rule.design log;
    if prov then Prov.debit ~kind:"rollback" ~rule:app.rule.Rule.rule_name;
    if traced then begin
      Trace.note_rule ~rule:app.rule.Rule.rule_name
        ~dt:(Unix.gettimeofday () -. t0)
        ~gain:0.0 ~outcome:`Rolled_back;
      Trace.emit
        (Trace.Rule_rolled_back
           { rule = app.rule.Rule.rule_name; site = app.site.Rule.descr })
    end;
    None
  end

(* One greedy step: evaluate all candidates, commit the best if it
   improves the cost.  Returns the applied candidate. *)
let greedy_step ?(min_gain = 1e-9) ?budget ctx ~cost ~cleanups rules =
  let candidates =
    List.concat_map
      (fun (r : Rule.t) ->
        List.map (fun site -> (r, site)) (guarded_find ctx r))
      rules
  in
  let best =
    List.fold_left
      (fun acc (r, site) ->
        match evaluate ?budget ctx ~cost ~cleanups r site with
        | None -> acc
        | Some gain -> (
            match acc with
            | Some { gain = g; _ } when g >= gain -> acc
            | _ -> Some { rule = r; site; gain }))
      None candidates
  in
  match best with
  | Some app when app.gain > min_gain -> commit_app ?budget ctx ~cleanups app
  | Some _ | None -> None

(* --- Parallel greedy ------------------------------------------------- *)

(* One parallel greedy step.  The fan-out unit is the rule: candidates
   are found on the coordinator (sequential semantics, including
   find-failure quarantine), then each rule's site list is evaluated by
   one supervised task on a forked snapshot of the design.  Grouping by
   rule — never by domain count — is what keeps the merge deterministic:
   a rule that fails mid-task skips its own remaining sites exactly as
   the sequential pass would, and the (rule index, site ordinal) merge
   order plus the sequential tie-break (earlier candidate wins ties)
   reproduce the sequential winner whenever the measured gains agree.

   Workers are pure oracles: no trace, no provenance, no guard, no
   budget mutation.  The coordinator charges the budget (one eval per
   candidate, deterministically), imports deferred quarantine failures
   in task order, and re-applies only the merged winner through
   [commit_app] — the same authoritative path the sequential step
   uses. *)
let greedy_step_par ?(min_gain = 1e-9) ?budget ~exec ~cost_factory ctx
    ~cleanups rules =
  match budget with
  | Some b when Budget.exhausted b -> None
  | _ ->
      let groups =
        List.filter_map
          (fun (r : Rule.t) ->
            match guarded_find ctx r with
            | [] -> None
            | sites -> Some (r, sites))
          rules
      in
      if groups = [] then None
      else begin
        (match budget with
        | Some b ->
            List.iter
              (fun (_, sites) -> List.iter (fun _ -> Budget.eval b) sites)
              groups
        | None -> ());
        let tasks =
          List.map
            (fun ((r : Rule.t), sites) () ->
              worker_task (fun () ->
                  let wctx = Rule.fork_context ctx in
                  let wcost = cost_factory wctx in
                  List.map (fun site -> evaluate wctx ~cost:wcost ~cleanups r site) sites))
            groups
        in
        let outcomes = Exec.map exec tasks in
        let best = ref None in
        List.iteri
          (fun ti ((r : Rule.t), sites) ->
            match outcomes.(ti) with
            | Pool.Done (gains, fails) ->
                import_failures fails;
                List.iter2
                  (fun site gain ->
                    match gain with
                    | None -> ()
                    | Some gain -> (
                        match !best with
                        | Some { gain = g; _ } when g >= gain -> ()
                        | _ -> best := Some { rule = r; site; gain }))
                  sites gains
            | Pool.Task_failed fault ->
                (* The whole task is written off and its rule
                   quarantined: a raising rule, a deadline overrun or a
                   stall are all contained here, never escalated. *)
                note_failure_named ~reason:Raised r.Rule.rule_name
                  ("parallel task: " ^ Pool.fault_message fault))
          groups;
        match !best with
        | Some app when app.gain > min_gain ->
            commit_app ?budget ctx ~cleanups app
        | Some _ | None -> None
      end

let greedy_pass ?(max_steps = 1000) ?budget ctx ~cost ~cleanups rules =
  let stop n =
    n >= max_steps
    || match budget with Some b -> Budget.exhausted b | None -> false
  in
  let rec go n acc =
    if stop n then List.rev acc
    else
      match greedy_step ?budget ctx ~cost ~cleanups rules with
      | Some app -> go (n + 1) (app :: acc)
      | None -> List.rev acc
  in
  go 0 []

(* Parallel greedy pass: [Sequential] plans take the legacy path
   byte-for-byte; [Inline] and [Pooled] plans share the fan-out step
   above, which is what makes [--domains 1] and [--domains N]
   bit-identical. *)
let greedy_pass_par ?(max_steps = 1000) ?budget ~exec ~cost_factory ctx ~cost
    ~cleanups rules =
  match (exec : Exec.t) with
  | Exec.Sequential -> greedy_pass ~max_steps ?budget ctx ~cost ~cleanups rules
  | Exec.Inline _ | Exec.Pooled _ ->
      let stop n =
        n >= max_steps
        || match budget with Some b -> Budget.exhausted b | None -> false
      in
      let rec go n acc =
        if stop n then List.rev acc
        else
          match greedy_step_par ?budget ~exec ~cost_factory ctx ~cleanups rules with
          | Some app -> go (n + 1) (app :: acc)
          | None -> List.rev acc
      in
      go 0 []
(* --- OPS-style strictly rule-based control --------------------------- *)

type ops_state = {
  fired : (string * int list, unit) Hashtbl.t;  (* refraction memory *)
  recency : (int, int) Hashtbl.t;  (* comp -> timestamp *)
  mutable clock : int;
}

let ops_create () =
  { fired = Hashtbl.create 256; recency = Hashtbl.create 256; clock = 0 }

let ops_recency st cid =
  Option.value ~default:0 (Hashtbl.find_opt st.recency cid)

let ops_touch st cids =
  st.clock <- st.clock + 1;
  List.iter (fun cid -> Hashtbl.replace st.recency cid st.clock) cids

(* One recognize-act cycle: conflict set = all (rule, site) matches;
   resolution: refraction, then recency of the matched components, then
   specificity (site size), then rule order.  Returns false when the
   conflict set is empty. *)
let ops_cycle ctx st rules =
  let conflict =
    List.concat_map
      (fun (r : Rule.t) ->
        List.filter_map
          (fun (site : Rule.site) ->
            let key = (r.Rule.rule_name, site.Rule.site_comps) in
            if Hashtbl.mem st.fired key then None else Some (r, site))
          (r.Rule.find ctx))
      rules
  in
  (* Third tie-break: rule order — the earlier a rule appears in the
     supplied list, the higher it scores. *)
  let rule_index = Hashtbl.create 16 in
  List.iteri
    (fun i (r : Rule.t) ->
      if not (Hashtbl.mem rule_index r.Rule.rule_name) then
        Hashtbl.replace rule_index r.Rule.rule_name i)
    rules;
  let score (r, (site : Rule.site)) =
    let rec_max =
      List.fold_left (fun acc c -> max acc (ops_recency st c)) 0
        site.Rule.site_comps
    in
    ( rec_max,
      List.length site.Rule.site_comps,
      -(Option.value ~default:max_int
          (Hashtbl.find_opt rule_index r.Rule.rule_name)) )
  in
  match conflict with
  | [] -> false
  | first :: rest ->
      let r, site =
        List.fold_left
          (fun acc cand -> if score cand > score acc then cand else acc)
          first rest
      in
      let log = D.new_log () in
      let applied = r.Rule.apply ctx site log in
      D.commit ~label:r.Rule.rule_name ~design:ctx.Rule.design log;
      if applied then lint_after ctx r.Rule.rule_name;
      Hashtbl.replace st.fired (r.Rule.rule_name, site.Rule.site_comps) ();
      if applied then ops_touch st site.Rule.site_comps;
      true

let ops_run ?(max_cycles = 2000) ctx rules =
  let st = ops_create () in
  let rec go n = if n >= max_cycles then n else if ops_cycle ctx st rules then go (n + 1) else n in
  go 0

(* Incremental recognize-act, the Rete discipline of Section 2.2.1:
   "once a test has been performed on a tree node, it is not redone
   until a change in data occurs upon which the attribute is dependent".
   The conflict set is computed once, then maintained incrementally:
   after a firing, only sites in the neighbourhood of the touched
   components are re-matched; stale sites are re-validated by [apply]
   itself (which refuses sites that no longer match). *)
let ops_run_incremental ?(max_cycles = 100000) ?(radius = 2) ctx rules =
  let st = ops_create () in
  let design = ctx.Rule.design in
  let conflict :
      (string * int list, Rule.t * Rule.site) Hashtbl.t =
    Hashtbl.create 1024
  in
  let add_sites () =
    List.iter
      (fun (r : Rule.t) ->
        List.iter
          (fun (site : Rule.site) ->
            let key = (r.Rule.rule_name, site.Rule.site_comps) in
            if not (Hashtbl.mem st.fired key) then
              Hashtbl.replace conflict key (r, site))
          (r.Rule.find ctx))
      rules
  in
  (* Initial full match. *)
  ctx.Rule.focus := None;
  add_sites ();
  let neighbourhood touched =
    let tbl = Hashtbl.create 32 in
    let rec expand frontier depth =
      if depth > radius then ()
      else begin
        let next = ref [] in
        List.iter
          (fun cid ->
            if not (Hashtbl.mem tbl cid) then begin
              Hashtbl.replace tbl cid ();
              match D.comp_opt design cid with
              | None -> ()
              | Some c ->
                  Hashtbl.iter
                    (fun _pin nid ->
                      match D.net_opt design nid with
                      | None -> ()
                      | Some net ->
                          List.iter
                            (fun (cid', _) ->
                              if not (Hashtbl.mem tbl cid') then
                                next := cid' :: !next)
                            net.D.npins)
                    c.D.conns
            end)
          frontier;
        expand !next (depth + 1)
      end
    in
    expand touched 0;
    tbl
  in
  let score (_, (site : Rule.site)) =
    let rec_max =
      List.fold_left (fun acc c -> max acc (ops_recency st c)) 0
        site.Rule.site_comps
    in
    (rec_max, List.length site.Rule.site_comps)
  in
  let cycles = ref 0 in
  let rec loop () =
    if !cycles >= max_cycles || Hashtbl.length conflict = 0 then ()
    else begin
      (* Select the best live site. *)
      let best = ref None in
      Hashtbl.iter
        (fun key entry ->
          match !best with
          | Some (_, bentry) when score bentry >= score entry -> ()
          | _ -> best := Some (key, entry))
        conflict;
      match !best with
      | None -> ()
      | Some (key, (r, site)) ->
          Hashtbl.remove conflict key;
          Hashtbl.replace st.fired key ();
          (* Re-test the pattern before firing (the Rete discipline): the
             design may have changed since the site entered the conflict
             set, and rule side conditions (fanout, connectivity) must
             still hold. *)
          let still_matches () =
            let tbl = Hashtbl.create 4 in
            List.iter (fun cid -> Hashtbl.replace tbl cid ()) site.Rule.site_comps;
            ctx.Rule.focus := Some tbl;
            let found = r.Rule.find ctx in
            ctx.Rule.focus := None;
            List.exists
              (fun (s : Rule.site) ->
                s.Rule.site_comps = site.Rule.site_comps
                && s.Rule.site_data = site.Rule.site_data)
              found
          in
          if Rule.site_alive ctx site && still_matches () then begin
            let log = D.new_log () in
            let applied = r.Rule.apply ctx site log in
            D.commit ~label:r.Rule.rule_name ~design:ctx.Rule.design log;
            if applied then begin
              lint_after ctx r.Rule.rule_name;
              incr cycles;
              ops_touch st site.Rule.site_comps;
              (* Re-match only around the touched components. *)
              let hood = neighbourhood site.Rule.site_comps in
              ctx.Rule.focus := Some hood;
              add_sites ();
              ctx.Rule.focus := None
            end
          end;
          loop ()
    end
  in
  loop ();
  !cycles