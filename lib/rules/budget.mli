(** Search budgets for the rewrite engines.

    A budget bounds a rule-application pass three ways: a wall-clock
    deadline, a maximum number of committed rule applications (steps)
    and a maximum number of candidate evaluations.  The engines check
    the budget at every step and stop cleanly when it is exhausted,
    reporting best-so-far results — the RTLScout discipline of budgeted
    optimization attempts, and the bound the paper's SOCRATES-style
    lookahead otherwise lacks. *)

type t

type status = {
  steps_used : int;  (** committed rule applications *)
  evals_used : int;  (** candidate evaluations (apply/measure/undo) *)
  elapsed : float;  (** seconds since the budget was created *)
  budget_exhausted : bool;  (** any limit was hit during the run *)
}

val unlimited : unit -> t
(** A budget that never exhausts (counters are still tracked). *)

val make : ?timeout:float -> ?max_steps:int -> ?max_evals:int -> unit -> t
(** [make ~timeout ~max_steps ~max_evals ()] starts the wall clock now;
    [timeout] is in seconds.  Omitted limits are unbounded. *)

val resume :
  ?timeout:float -> ?max_steps:int -> ?max_evals:int ->
  steps:int -> evals:int -> elapsed:float -> unit -> t
(** Re-arm a budget from recorded consumption (journal resume): the
    original limits, with counters pre-charged to [steps]/[evals] and
    the wall clock back-dated by [elapsed], so the resumed run only
    gets what the interrupted run had left. *)

val limits : t -> float option * int option * int option
(** The budget's original [(timeout, max_steps, max_evals)] limits —
    what {!make} (or {!resume}) was given, independent of consumption.
    Journaled in the run header so a resume can re-arm the same
    bounds. *)

val deadline_time : t -> float option
(** The absolute wall-clock deadline ([Unix.gettimeofday] scale), if
    the budget has one.  The parallel runtime passes it to supervised
    tasks so stragglers are cancelled when the budget would flag
    exhaustion. *)

val step : t -> unit
(** Count one committed rule application. *)

val eval : t -> unit
(** Count one candidate evaluation. *)

val exhausted : t -> bool
(** True once any limit (deadline, steps, evals) is reached.  Sticky:
    the exhaustion is remembered and reported by {!status}. *)

val status : t -> status

val pp_status : Format.formatter -> status -> unit
