(* First-class rewrite rules over netlists.

   A rule has an antecedent ([find]: all match sites in the design) and
   a consequent ([apply]: perform the local transformation, recording
   its changelog so the engine can measure and backtrack — the paper's
   SOCRATES keeps exactly such a log).  Rules are grouped in classes
   mirroring the five experts of Figure 17 plus the cleanup class of the
   Logic Consultant and the microarchitecture critic's rules. *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types
module Macro = Milo_library.Macro
module Technology = Milo_library.Technology

type rule_class =
  | Logic  (** always improves both delay and area *)
  | Timing  (** speed at the expense of area/power *)
  | Area  (** area at the expense of speed *)
  | Power  (** power at the expense of speed *)
  | Electric  (** corrects electrical violations (fanout) *)
  | Cleanup  (** high-priority clean-up after other rules *)
  | Micro  (** microarchitecture-level transformation *)

let class_name = function
  | Logic -> "logic"
  | Timing -> "timing"
  | Area -> "area"
  | Power -> "power"
  | Electric -> "electric"
  | Cleanup -> "cleanup"
  | Micro -> "micro"

type context = {
  design : D.t;
  tech : Technology.t;  (** library the design's macros come from *)
  set : Milo_compilers.Gate_comp.gate_set;
  resolve : D.resolver;
  focus : (int, unit) Hashtbl.t option ref;
      (** when set, [find] only examines these components — the
          Rete-style incremental matching of Section 2.2.1 *)
  measurer : Milo_measure.Measure.t option ref;
      (** when set, the engine keeps this incremental measurer in
          lock-step with every apply/undo/commit, and measurer-aware
          cost functions read it instead of recomputing *)
}

let make_context ?(extra_resolve : D.resolver option) tech set design =
  let resolve kind nm =
    match kind with
    | T.Macro _ when Technology.mem tech nm -> (Technology.find tech nm).Macro.pins
    | T.Macro _ | T.Instance _ -> (
        match extra_resolve with
        | Some f -> f kind nm
        | None ->
            invalid_arg (Printf.sprintf "Rule.context: unresolved %s" nm))
    | T.Gate _ | T.Multiplexor _ | T.Decoder _ | T.Comparator _
    | T.Logic_unit _ | T.Arith_unit _ | T.Register _ | T.Counter _
    | T.Constant _ ->
        T.pins_of_kind kind
  in
  { design; tech; set; resolve; focus = ref None; measurer = ref None }

(* Fork for a parallel oracle worker: an id-preserving snapshot of the
   design (so sites — bare component/net ids — found on the original
   resolve identically on the fork), sharing the immutable technology,
   gate set and resolver, with fresh focus and measurer slots.  The
   worker evaluates candidates on the copy and throws it away; nothing
   it does is visible through the original context. *)
let fork_context ctx =
  {
    ctx with
    design = D.copy ctx.design;
    focus = ref None;
    measurer = ref None;
  }

let find_macro ctx name = Technology.find_opt ctx.tech name

let macro_of ctx (c : D.comp) =
  match c.D.kind with
  | T.Macro m -> Technology.find_opt ctx.tech m
  | T.Gate _ | T.Multiplexor _ | T.Decoder _ | T.Comparator _ | T.Logic_unit _
  | T.Arith_unit _ | T.Register _ | T.Counter _ | T.Constant _ | T.Instance _
    ->
      None

type site = { site_comps : int list; site_data : int list; descr : string }

let site ?(data = []) ~comps descr =
  { site_comps = comps; site_data = data; descr }

type t = {
  rule_name : string;
  rule_class : rule_class;
  find : context -> site list;
  apply : context -> site -> D.log -> bool;
      (** returns false if the site is stale (no longer matches) *)
}

let make ~name ~cls ~find ~apply =
  { rule_name = name; rule_class = cls; find; apply }

(* --- Helpers shared by rule implementations -------------------------- *)

(* Components eligible for matching: all of them, or just the focus set
   during incremental recognize-act. *)
let scan_comps ctx =
  match !(ctx.focus) with
  | None -> D.comps ctx.design
  | Some tbl ->
      Hashtbl.fold
        (fun cid () acc ->
          match D.comp_opt ctx.design cid with
          | Some c -> c :: acc
          | None -> acc)
        tbl []

(* All components whose kind is a macro satisfying [pred]. *)
let macro_comps ctx pred =
  List.filter_map
    (fun (c : D.comp) ->
      match macro_of ctx c with
      | Some m when pred c m -> Some c
      | Some _ | None -> None)
    (scan_comps ctx)

(* The single driver component of a net, if combinational macro. *)
let driver_comp ctx nid =
  match D.driver ~resolve:ctx.resolve ctx.design nid with
  | D.Src_comp (cid, pin) -> Some (D.comp ctx.design cid, pin)
  | D.Src_port _ | D.Src_none -> None

let fanout ctx nid = D.fanout ~resolve:ctx.resolve ctx.design nid

(* Replace component [cid] by macro [mname], rewiring pins through
   [pin_map : new_pin -> old_pin].  Pins absent from the map are left
   unconnected. *)
let replace_macro ctx log cid mname pin_map =
  let old_conns = D.connections ctx.design cid in
  List.iter (fun (pin, _) -> D.disconnect ~log ctx.design cid pin) old_conns;
  D.set_kind ~log ctx.design cid (T.Macro mname);
  let m = Technology.find ctx.tech mname in
  List.iter
    (fun (new_pin, _) ->
      match pin_map new_pin with
      | Some old_pin -> (
          match List.assoc_opt old_pin old_conns with
          | Some nid -> D.connect ~log ctx.design cid new_pin nid
          | None -> ())
      | None -> ())
    m.Macro.pins

(* Delete a component and any nets it leaves dangling (no pins, no
   port). *)
let remove_comp_and_dangling ctx log cid =
  let conns = D.connections ctx.design cid in
  D.remove_comp ~log ctx.design cid;
  List.iter
    (fun (_, nid) ->
      match D.net_opt ctx.design nid with
      | Some n when n.D.npins = [] && n.D.nport = None ->
          D.remove_net ~log ctx.design nid
      | Some _ | None -> ())
    conns

(* Move every pin (and port binding stays) from [src] onto [dst]. *)
let merge_net_into ctx log ~src ~dst =
  let pins = (D.net ctx.design src).D.npins in
  List.iter (fun (cid, pin) -> D.connect ~log ctx.design cid pin dst) pins;
  match D.net_opt ctx.design src with
  | Some n when n.D.npins = [] && n.D.nport = None ->
      D.remove_net ~log ctx.design src
  | Some _ | None -> ()

let net_is_port ctx nid = (D.net ctx.design nid).D.nport <> None

(* Route [signal]'s value to the consumers of [old_net].  Unlike a plain
   merge, this handles [signal] being an input-port net (whose "driver"
   cannot move): then the old net's pins move onto the signal net; if
   both nets are port-bound, a buffer bridges them. *)
let reroute ctx log ~signal ~old_net =
  if signal = old_net then ()
  else
    let comp_driven =
      match driver_comp ctx signal with Some _ -> true | None -> false
    in
    if comp_driven && not (net_is_port ctx signal) then
      merge_net_into ctx log ~src:signal ~dst:old_net
    else if not (net_is_port ctx old_net) then begin
      let pins = (D.net ctx.design old_net).D.npins in
      List.iter (fun (cid, pin) -> D.connect ~log ctx.design cid pin signal) pins;
      match D.net_opt ctx.design old_net with
      | Some n when n.D.npins = [] && n.D.nport = None ->
          D.remove_net ~log ctx.design old_net
      | Some _ | None -> ()
    end
    else begin
      (* Both port-bound: bridge with a buffer. *)
      let out =
        Milo_compilers.Gate_comp.build ~log ctx.design ctx.set
          Milo_netlist.Types.Buf [ signal ]
      in
      if out <> signal then merge_net_into ctx log ~src:out ~dst:old_net
    end

(* Does the site still refer to live components? *)
let site_alive ctx site =
  List.for_all (fun cid -> D.comp_opt ctx.design cid <> None) site.site_comps
