(** SOCRATES-style lookahead search with the metarule control parameters
    of [CoBa85]: breadth B, depth D_max, application depth D_app,
    neighbourhood N and per-move cost tolerance Δcost. *)

type params = {
  b : int;
  d_max : int;
  d_app : int;
  n_hood : int;
  delta_cost : float;
}

val default_params : params

val neighbourhood :
  Rule.context -> int list -> int -> (int, unit) Hashtbl.t
(** Component ids within the given path distance of the seeds. *)

type stats = { mutable nodes : int; mutable evals : int }

val search :
  ?params:params ->
  ?stats:stats ->
  ?budget:Budget.t ->
  Rule.context ->
  cost:(unit -> float) ->
  cleanups:Rule.t list ->
  Rule.t list ->
  float option
(** One lookahead step: build the bounded search tree, execute the first
    D_app moves of the best sequence.  Returns the realized gain.  An
    exhausted [budget] prunes the remaining tree; the search returns
    best-so-far. *)

val run :
  ?params:params ->
  ?max_steps:int ->
  ?stats:stats ->
  ?budget:Budget.t ->
  Rule.context ->
  cost:(unit -> float) ->
  cleanups:Rule.t list ->
  Rule.t list ->
  float
(** Iterate lookahead steps to quiescence, [max_steps], or budget
    exhaustion; returns the total gain. *)

val search_par :
  ?params:params ->
  ?stats:stats ->
  ?budget:Budget.t ->
  exec:Milo_parallel.Exec.t ->
  cost_factory:(Rule.context -> unit -> float) ->
  Rule.context ->
  cost:(unit -> float) ->
  cleanups:Rule.t list ->
  Rule.t list ->
  float option
(** One parallel lookahead step: root moves are scored by one
    supervised task per rule on forked snapshots, the top-B branches
    are each explored by their own task, and results merge in
    submission order (stable rank, sequential tie-breaks) before the
    winning prefix is re-applied authoritatively on the caller's
    context.  Faulting tasks quarantine their rule; the step never
    raises from a task and never hangs on one. *)

val run_par :
  ?params:params ->
  ?max_steps:int ->
  ?stats:stats ->
  ?budget:Budget.t ->
  exec:Milo_parallel.Exec.t ->
  cost_factory:(Rule.context -> unit -> float) ->
  Rule.context ->
  cost:(unit -> float) ->
  cleanups:Rule.t list ->
  Rule.t list ->
  float
(** {!run} with a parallel execution plan.  A [Sequential] plan takes
    the legacy path byte-for-byte; [Inline] and [Pooled] plans share
    {!search_par}, making [--domains 1] and [--domains N] identical. *)
