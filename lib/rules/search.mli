(** SOCRATES-style lookahead search with the metarule control parameters
    of [CoBa85]: breadth B, depth D_max, application depth D_app,
    neighbourhood N and per-move cost tolerance Δcost. *)

type params = {
  b : int;
  d_max : int;
  d_app : int;
  n_hood : int;
  delta_cost : float;
}

val default_params : params

val neighbourhood :
  Rule.context -> int list -> int -> (int, unit) Hashtbl.t
(** Component ids within the given path distance of the seeds. *)

type stats = { mutable nodes : int; mutable evals : int }

val search :
  ?params:params ->
  ?stats:stats ->
  ?budget:Budget.t ->
  Rule.context ->
  cost:(unit -> float) ->
  cleanups:Rule.t list ->
  Rule.t list ->
  float option
(** One lookahead step: build the bounded search tree, execute the first
    D_app moves of the best sequence.  Returns the realized gain.  An
    exhausted [budget] prunes the remaining tree; the search returns
    best-so-far. *)

val run :
  ?params:params ->
  ?max_steps:int ->
  ?stats:stats ->
  ?budget:Budget.t ->
  Rule.context ->
  cost:(unit -> float) ->
  cleanups:Rule.t list ->
  Rule.t list ->
  float
(** Iterate lookahead steps to quiescence, [max_steps], or budget
    exhaustion; returns the total gain. *)
