(** Single-output combinational cones: extraction, evaluation and
    replacement — the machinery behind strategies 4, 6, 7 and 8. *)

module D = Milo_netlist.Design
module R = Rule
open Milo_boolfunc

type t = { out_net : int; leaves : int list; comps : int list }

val expandable : R.context -> int -> (D.comp * Milo_library.Macro.t) option
val extract : R.context -> max_leaves:int -> int -> t option
val eval : R.context -> t -> (int * bool) list -> bool

val eval_packed : R.context -> t -> (int * int) list -> int
(** Word-level [eval]: each leaf carries [Eval.Packed.lanes] vectors,
    one per bit position; the result word holds the cone output of
    every lane. *)

val digest : R.context -> t -> string
(** Canonical structural digest of the cone's logic over its leaf
    variables: equal digests mean equal functions within one
    technology (kinds carry only macro names — include the library in
    any cross-design cache key). *)

val truth_table : R.context -> t -> Truth_table.t option
(** [None] when the cone has more than 6 leaves. *)

val minterms : R.context -> t -> int list
(** On-set minterm enumeration (2^leaves evaluations). *)

val replace : R.context -> D.log -> t -> build:(unit -> int) -> bool
(** Disconnect the old driver and merge the net [build] returns into the
    cone output.  Dead logic is left for the cleanup rules. *)

val area : R.context -> t -> float
