(** First-class rewrite rules over netlists: an antecedent ([find]) and
    a consequent ([apply]) that records an undoable changelog, grouped
    into the expert classes of Figure 17. *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types

type rule_class = Logic | Timing | Area | Power | Electric | Cleanup | Micro

val class_name : rule_class -> string

type context = {
  design : D.t;
  tech : Milo_library.Technology.t;
  set : Milo_compilers.Gate_comp.gate_set;
  resolve : D.resolver;
  focus : (int, unit) Hashtbl.t option ref;
      (** when set, rule matching only examines these components (the
          Rete-style incremental discipline of Section 2.2.1) *)
  measurer : Milo_measure.Measure.t option ref;
      (** when set (see [Engine]), the measured disciplines keep this
          incremental measurer in lock-step with the design and
          measurer-aware cost functions read it in O(1) *)
}

val make_context :
  ?extra_resolve:D.resolver ->
  Milo_library.Technology.t ->
  Milo_compilers.Gate_comp.gate_set ->
  D.t ->
  context

val fork_context : context -> context
(** An oracle-worker fork: id-preserving copy of the design (sites
    found on the original resolve identically on the fork), shared
    immutable technology/set/resolver, fresh focus and measurer slots.
    Nothing done through the fork is visible through the original. *)

val scan_comps : context -> D.comp list
(** Components eligible for matching (respects the focus set). *)

val find_macro : context -> string -> Milo_library.Macro.t option
val macro_of : context -> D.comp -> Milo_library.Macro.t option

type site = { site_comps : int list; site_data : int list; descr : string }

val site : ?data:int list -> comps:int list -> string -> site

type t = {
  rule_name : string;
  rule_class : rule_class;
  find : context -> site list;
  apply : context -> site -> D.log -> bool;
}

val make :
  name:string ->
  cls:rule_class ->
  find:(context -> site list) ->
  apply:(context -> site -> D.log -> bool) ->
  t

(** {2 Helpers for rule implementations} *)

val macro_comps :
  context -> (D.comp -> Milo_library.Macro.t -> bool) -> D.comp list

val driver_comp : context -> int -> (D.comp * string) option
val fanout : context -> int -> int

val replace_macro :
  context -> D.log -> int -> string -> (string -> string option) -> unit
(** [replace_macro ctx log cid mname pin_map] swaps the component's kind
    and rewires each new pin from the old pin [pin_map] names. *)

val remove_comp_and_dangling : context -> D.log -> int -> unit
val merge_net_into : context -> D.log -> src:int -> dst:int -> unit
(** Move every pin from [src] to [dst]; caller must ensure [src] is not
    an externally visible port net (check {!net_is_port}). *)

val net_is_port : context -> int -> bool

(** Route [signal]'s value to the consumers of [old_net], coping with
    [signal] being an input-port net (merge direction flips) or both
    nets being port-bound (a buffer bridges them). *)
val reroute : context -> D.log -> signal:int -> old_net:int -> unit
val site_alive : context -> site -> bool
