(* Single-output combinational cones: the unit of the hash-table macro
   selection (strategies 4/6), the two-level collapse (strategy 7) and
   the mux duplication (strategy 8).

   A cone is the transitive combinational fanin of a net, cut off at
   ports, sequential outputs, multi-output macros and the leaf budget.
   Its function is computed by local evaluation, as a truth table
   (≤ 6 leaves) or a minterm cover (≤ [max_enum] leaves). *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types
module R = Rule
module Macro = Milo_library.Macro
open Milo_boolfunc

type t = {
  out_net : int;
  leaves : int list;  (* nets, in variable order *)
  comps : int list;  (* cone components, any order *)
}

(* The driving comb single-output macro of a net, if expandable. *)
let expandable ctx nid =
  match R.driver_comp ctx nid with
  | Some (c, _) -> (
      match R.macro_of ctx c with
      | Some m
        when (not (Macro.is_sequential m))
             && List.length m.Macro.outputs = 1
             && (match m.Macro.behavior with
                | Macro.Combinational _ -> true
                | Macro.Comb_eval _ | Macro.Seq_dff _ | Macro.Seq_counter _
                | Macro.Seq_custom _ ->
                    false) ->
          Some (c, m)
      | Some _ | None -> None)
  | None -> None

(* Extract a cone rooted at [out_net].  Expansion is breadth-first and
   stops when adding a component would exceed the leaf budget. *)
let extract ctx ~max_leaves out_net =
  let leaves = ref [] in
  let comps = ref [] in
  let rec grow frontier =
    match frontier with
    | [] -> ()
    | nid :: rest -> (
        match expandable ctx nid with
        | None ->
            if not (List.mem nid !leaves) then leaves := nid :: !leaves;
            grow rest
        | Some (c, m) ->
            if List.mem c.D.id !comps then grow rest
            else begin
              let ins =
                List.filter_map
                  (fun pin -> D.connection ctx.R.design c.D.id pin)
                  m.Macro.inputs
              in
              (* Conservative budget check. *)
              let new_leaves =
                List.filter
                  (fun n -> (not (List.mem n !leaves)) && expandable ctx n = None)
                  (List.sort_uniq compare ins)
              in
              if
                List.length !leaves + List.length new_leaves > max_leaves
                && !comps <> []
              then begin
                (* Treat this net as a leaf instead of expanding. *)
                if not (List.mem nid !leaves) then leaves := nid :: !leaves;
                grow rest
              end
              else begin
                comps := c.D.id :: !comps;
                grow (ins @ rest)
              end
            end)
  in
  grow [ out_net ];
  let leaves = List.sort_uniq compare !leaves in
  if List.length leaves > max_leaves then None
  else Some { out_net; leaves; comps = !comps }

(* Canonical structural digest of the cone's logic: a DFS
   serialization from the output with leaves replaced by their
   variable index and component kinds replaced by interned kind ids,
   with backreferences for shared subtrees.  Two cones with equal
   digests compute the same function of their leaves (within one
   technology — macro kinds carry only the macro name, so cache keys
   must include the library).  This is what lets the guard's
   truth-vector snapshots be shared across structurally identical
   cones instead of re-simulated. *)
let digest ctx cone =
  let buf = Buffer.create 64 in
  let leaf_ix = List.mapi (fun i nid -> (nid, i)) cone.leaves in
  let memo = Hashtbl.create 16 in
  let counter = ref 0 in
  let rec go nid =
    match Hashtbl.find_opt memo nid with
    | Some l -> Buffer.add_string buf (Printf.sprintf "#%d" l)
    | None ->
        Hashtbl.replace memo nid !counter;
        incr counter;
        (match List.assoc_opt nid leaf_ix with
        | Some i -> Buffer.add_string buf (Printf.sprintf "L%d" i)
        | None -> (
            match expandable ctx nid with
            | Some (c, m) when List.mem c.D.id cone.comps ->
                Buffer.add_string buf
                  (Printf.sprintf "(%d"
                     (Milo_netlist.Hashcons.kind_id c.D.kind));
                List.iter
                  (fun pin ->
                    Buffer.add_char buf ' ';
                    match D.connection ctx.R.design c.D.id pin with
                    | Some n -> go n
                    | None -> Buffer.add_char buf '_')
                  m.Macro.inputs;
                Buffer.add_char buf ')'
            | Some _ | None -> Buffer.add_char buf '_'))
  in
  go cone.out_net;
  Buffer.contents buf

(* Evaluate the cone output under a leaf assignment. *)
let eval ctx cone assignment =
  let memo = Hashtbl.create 16 in
  let rec value nid =
    match Hashtbl.find_opt memo nid with
    | Some v -> v
    | None ->
        let v =
          match List.assoc_opt nid assignment with
          | Some v -> v
          | None -> (
              match expandable ctx nid with
              | Some (c, m) when List.mem c.D.id cone.comps ->
                  let pvs =
                    List.map
                      (fun pin ->
                        ( pin,
                          match D.connection ctx.R.design c.D.id pin with
                          | Some n -> value n
                          | None -> false ))
                      m.Macro.inputs
                  in
                  let outs = Milo_sim.Eval.macro_comb_outputs m pvs in
                  List.assoc (List.nth m.Macro.outputs 0) outs
              | Some _ | None -> false)
        in
        Hashtbl.replace memo nid v;
        v
  in
  value cone.out_net

(* Bit-parallel cone evaluation: leaf assignments and the result are
   words carrying [Eval.Packed.lanes] vectors, one per bit position.
   Cone components are single-output [Combinational] macros (that is
   what [expandable] admits), so every step is a word-level
   truth-table evaluation. *)
let eval_packed ctx cone assignment =
  let memo = Hashtbl.create 16 in
  let rec value nid =
    match Hashtbl.find_opt memo nid with
    | Some w -> w
    | None ->
        let w =
          match List.assoc_opt nid assignment with
          | Some w -> w
          | None -> (
              match expandable ctx nid with
              | Some (c, m) when List.mem c.D.id cone.comps ->
                  let ws =
                    List.map
                      (fun pin ->
                        ( pin,
                          match D.connection ctx.R.design c.D.id pin with
                          | Some n -> value n
                          | None -> 0 ))
                      m.Macro.inputs
                  in
                  let outs = Milo_sim.Eval.Packed.macro_comb_outputs m ws in
                  List.assoc (List.nth m.Macro.outputs 0) outs
              | Some _ | None -> 0)
        in
        Hashtbl.replace memo nid w;
        w
  in
  value cone.out_net

let truth_table ctx cone =
  let n = List.length cone.leaves in
  if n > Truth_table.max_vars then None
  else
    Some
      (Truth_table.of_fun n (fun a ->
           eval ctx cone (List.mapi (fun i nid -> (nid, a.(i))) cone.leaves)))

(* On-set minterms by enumeration (strategy 7's collapse). *)
let minterms ctx cone =
  let n = List.length cone.leaves in
  let on = ref [] in
  for m = 0 to (1 lsl n) - 1 do
    let assignment =
      List.mapi (fun i nid -> (nid, m land (1 lsl i) <> 0)) cone.leaves
    in
    if eval ctx cone assignment then on := m :: !on
  done;
  !on

(* Replace the cone's logic: disconnect the old driver from [out_net]
   and let [build] produce the replacement net from the leaves; dead old
   logic is left for the cleanup rules.  Returns false if the output has
   no driver. *)
let replace ctx log cone ~build =
  match R.driver_comp ctx cone.out_net with
  | None -> false
  | Some (old_driver, out_pin) ->
      D.disconnect ~log ctx.R.design old_driver.D.id out_pin;
      let src = build () in
      R.reroute ctx log ~signal:src ~old_net:cone.out_net;
      true

(* Estimated area of the cone's exclusive logic (components whose
   outputs stay inside the cone). *)
let area ctx cone =
  List.fold_left
    (fun acc cid ->
      match D.comp_opt ctx.R.design cid with
      | Some c -> (
          match R.macro_of ctx c with
          | Some m -> acc +. m.Macro.area
          | None -> acc)
      | None -> acc)
    0.0 cone.comps
