(** The recognize–act engine: OPS-style strictly rule-based control
    (refraction / recency / specificity), and measured greedy control
    with cleanup-rule lookahead (the Logic Consultant's discipline). *)

module D = Milo_netlist.Design

type measure = Milo_measure.Measure.totals = {
  delay : float;
  area : float;
  power : float;
}

val pp_measure : Format.formatter -> measure -> unit

type objective = measure -> float

val weighted :
  ?w_delay:float -> ?w_area:float -> ?w_power:float -> unit -> objective

val measure_fn :
  Rule.context -> input_arrivals:(string * float) list -> unit -> measure
(** Timing/area/power of the current (technology-mapped) design. *)

exception Lint_violation of string * string
(** Raised in debug-lint mode when a rule application breaks a
    structural invariant: (rule name, lint report). *)

val set_debug_lint : bool -> unit
(** When enabled, the engine re-checks the structural lint invariants
    ([Milo_lint.Lint.structural_rules]) after every rule application
    and raises {!Lint_violation} naming the offending rule.  Costs a
    full design scan per application — debugging only.  Global; off by
    default. *)

type reason =
  | Raised  (** the rule's [apply] or [find] raised (or failed debug-lint) *)
  | Miscompiled
      (** the semantic guard caught the rule changing its site's
          function; the application was reverted *)

val reason_name : reason -> string
(** ["raised"] / ["miscompiled"]. *)

val quarantine_reset : unit -> unit
(** Clear the rule quarantine (call at the start of a flow run). *)

val is_quarantined : string -> bool

val quarantined : unit -> (string * int) list
(** Rules quarantined since the last reset, with the number of failed
    applications trapped for each, sorted by name.  A rule is
    quarantined when its [apply] (or [find]) raises, or when debug-lint
    flags its result, inside a measured pass: the offending edits are
    rolled back through the change log and the rule matches nothing for
    the rest of the run, instead of the exception aborting the pass. *)

val quarantined_errors : unit -> (string * string) list
(** For each quarantined rule, the message of the {e first} exception
    trapped from it (later failures only bump the count) — the raw
    material for [Report.partial_summary]'s diagnosis lines.  Sorted by
    name. *)

val quarantined_reasons : unit -> (string * reason) list
(** Why each quarantined rule was quarantined (the reason of its first
    trapped failure).  Sorted by name. *)

val quarantine_dump : unit -> (string * int * string * reason) list
(** Full quarantine image — rule, trapped-failure count, first error
    message, reason — sorted by name.  Journaled at flow checkpoints so
    a resumed run can restore it. *)

val quarantine_restore : (string * int * string * reason) list -> unit
(** Replace the quarantine with a recorded image (journal resume). *)

val note_failure_named : reason:reason -> string -> string -> unit
(** [note_failure_named ~reason key msg] quarantines [key] directly —
    used by the strategy layer to quarantine whole strategies
    (["strategy:NAME"]) when their parallel task faults.  Inside an
    oracle worker the failure is deferred into the worker's buffer
    like any rule failure. *)

(** {2 Parallel oracle workers}

    The parallel fan-out runs candidate evaluations as supervised
    tasks on forked design snapshots ({!Rule.fork_context}).  Inside
    {!worker_task}, the engine's observable machinery is suspended:
    tracing and provenance are suppressed on the domain, the rule
    guard short-circuits (verdict [Unguarded], no stats ticks), and
    quarantine writes are deferred into a per-task buffer the
    coordinator imports in task order.  Only the merged winner is then
    re-applied authoritatively on the coordinator — which is what
    keeps every observable stream bit-identical across domain
    counts. *)

val worker_task :
  (unit -> 'a) -> 'a * (string * string * reason) list
(** Run a task body in oracle-worker mode; returns its value and the
    deferred failures (oldest first) as [(rule, message, reason)]. *)

val import_failures : (string * string * reason) list -> unit
(** Fold a worker's deferred failures into the global quarantine.
    Call on the coordinator, in task-submission order. *)

(** {2 Semantic rule guard}

    When armed, every successful [guarded_apply] may be re-simulated
    over the touched cone (truth vectors of the site's output nets
    over their fan-in leaves, before vs after).  A divergence is
    rolled back and the rule quarantined with reason {!Miscompiled}.
    The check is conservative: sites whose new structure cannot be
    evaluated over the old leaves are skipped (the flow's stage guards
    backstop them), so a sound rule is never quarantined. *)

val set_rule_guard :
  ?budget:Budget.t -> ?stats:Milo_guard.Guard.stats ->
  Milo_guard.Guard.policy -> unit
(** Arm (or, with [Off], disarm) the rule guard.  [Sampled] checks the
    first application of each rule and then every 16th opportunity,
    and stops checking once [budget] is exhausted; [Full] checks every
    application.  Counters accumulate into [stats] when given.
    Global, like the quarantine; the flow sets and clears it per
    run. *)

val clear_rule_guard : unit -> unit

val rule_guard_stats : unit -> Milo_guard.Guard.stats option
(** Counters of the currently armed rule guard, if any. *)

val guard_sample_state : unit -> (int * string list) option
(** The [Sampled] tier's deterministic position — tick counter and the
    set of rules already checked once — journaled at flow checkpoints;
    [None] when no rule guard is armed. *)

val restore_guard_sample_state : int -> string list -> unit
(** Re-enter the sampling sequence at a recorded position (journal
    resume).  No-op when no rule guard is armed. *)

(** {2 Certified rules}

    Rules holding a static Certified certificate (proved sound offline
    by [Milo_absint.Certify]: exhaustive truth-table enumeration over
    their rewrite cones).  Their applications skip the dynamic cone
    re-simulation entirely — counted in [stats.rule_certified] — so a
    [Full] rule guard costs only the flow's stage-boundary checks.
    Probabilistic and Uncertified rules keep the dynamic check.  The
    store holds names only (certification lives above this layer) and
    is global like the quarantine; the flow installs and clears it per
    run.  Quarantine still dominates a certificate. *)

val set_certified : string list -> unit
(** Replace the certified-rule store with the given rule names. *)

val clear_certified : unit -> unit
val is_certified : string -> bool

val certified_rules : unit -> string list
(** Currently installed certified rule names, sorted. *)

val guarded_find : Rule.context -> Rule.t -> Rule.site list
(** [find] with quarantine: a raising or quarantined rule matches
    nothing. *)

val guarded_apply : Rule.context -> Rule.t -> Rule.site -> D.log -> bool
(** Transactional [apply]: edits go to a private sub-log, spliced into
    the given log on success; on an exception (or a debug-lint
    violation) the edits are undone, the rule is quarantined and the
    result is [false]. *)

val run_cleanups : Rule.context -> Rule.t list -> D.log -> unit
(** Fire applicable cleanup rules to a bounded fixpoint, recording into
    the same log.  The bound charges successful applications only. *)

(** {2 Incremental measurement lock-step}

    When [ctx.measurer] is set (see [Milo_measure.Measure]), the
    measured disciplines keep it synchronized with the design.  After
    applying edits into a log, call {!measure_step}; then pair
    [D.undo]+{!measure_drop} or [D.commit]+{!measure_keep}. *)

type mstep =
  | No_measurer  (** context carries no measurer: nothing to sync *)
  | Measured of Milo_measure.Measure.token
  | Measure_failed
      (** the advance raised (unmeasurable candidate state); dropping
          is free, keeping forces a full resync *)

val measure_step : Rule.context -> D.log -> mstep
(** Fold the log's entries into the context's measurer, if any.
    [Out_of_memory], [Stack_overflow] and [Measure.Divergence]
    propagate; any other failure yields [Measure_failed] with the
    measurer state unchanged. *)

val measure_drop : Rule.context -> mstep -> unit
(** After [D.undo] of the same log: retreat the measurer exactly. *)

val measure_keep : Rule.context -> mstep -> unit
(** After [D.commit] of the same log: keep the advanced state
    (resyncing from scratch if the step had failed). *)

type application = { rule : Rule.t; site : Rule.site; gain : float }

val evaluate :
  ?budget:Budget.t ->
  Rule.context ->
  cost:(unit -> float) ->
  cleanups:Rule.t list ->
  Rule.t ->
  Rule.site ->
  float option
(** Gain of applying the rule (with cleanups) at the site: apply,
    measure, undo.  Counts one evaluation against [budget] and returns
    [None] without applying once the budget is exhausted. *)

val greedy_step :
  ?min_gain:float ->
  ?budget:Budget.t ->
  Rule.context ->
  cost:(unit -> float) ->
  cleanups:Rule.t list ->
  Rule.t list ->
  application option

val greedy_pass :
  ?max_steps:int ->
  ?budget:Budget.t ->
  Rule.context ->
  cost:(unit -> float) ->
  cleanups:Rule.t list ->
  Rule.t list ->
  application list
(** Greedy steps until quiescence, [max_steps], or the budget is
    exhausted — in the last case the pass stops cleanly with the
    applications committed so far. *)

val greedy_step_par :
  ?min_gain:float ->
  ?budget:Budget.t ->
  exec:Milo_parallel.Exec.t ->
  cost_factory:(Rule.context -> unit -> float) ->
  Rule.context ->
  cleanups:Rule.t list ->
  Rule.t list ->
  application option
(** One parallel greedy step: candidates are found on the coordinator,
    each rule's sites are evaluated by one supervised task on a forked
    snapshot ([cost_factory] builds the worker's cost function over
    the fork), and the merged winner — (rule index, site ordinal)
    order, sequential tie-break — is re-applied authoritatively.  A
    faulting task quarantines its rule; the step never raises from a
    task and never hangs on one. *)

val greedy_pass_par :
  ?max_steps:int ->
  ?budget:Budget.t ->
  exec:Milo_parallel.Exec.t ->
  cost_factory:(Rule.context -> unit -> float) ->
  Rule.context ->
  cost:(unit -> float) ->
  cleanups:Rule.t list ->
  Rule.t list ->
  application list
(** {!greedy_pass} with a parallel execution plan.  A [Sequential]
    plan takes the legacy path byte-for-byte (using [cost]); [Inline]
    and [Pooled] plans share {!greedy_step_par}, which is what makes
    [--domains 1] and [--domains N] produce identical results. *)

type ops_state

val ops_create : unit -> ops_state
val ops_cycle : Rule.context -> ops_state -> Rule.t list -> bool
val ops_run : ?max_cycles:int -> Rule.context -> Rule.t list -> int
(** Run recognize–act to quiescence; returns the cycle count. *)

val ops_run_incremental :
  ?max_cycles:int -> ?radius:int -> Rule.context -> Rule.t list -> int
(** Recognize–act with Rete-style incremental matching: after each
    firing, only the neighbourhood of the touched components is
    re-examined; a full scan runs only to confirm quiescence. *)
