(** The recognize–act engine: OPS-style strictly rule-based control
    (refraction / recency / specificity), and measured greedy control
    with cleanup-rule lookahead (the Logic Consultant's discipline). *)

module D = Milo_netlist.Design

type measure = { delay : float; area : float; power : float }

val pp_measure : Format.formatter -> measure -> unit

type objective = measure -> float

val weighted :
  ?w_delay:float -> ?w_area:float -> ?w_power:float -> unit -> objective

val measure_fn :
  Rule.context -> input_arrivals:(string * float) list -> unit -> measure
(** Timing/area/power of the current (technology-mapped) design. *)

exception Lint_violation of string * string
(** Raised in debug-lint mode when a rule application breaks a
    structural invariant: (rule name, lint report). *)

val set_debug_lint : bool -> unit
(** When enabled, the engine re-checks the structural lint invariants
    ([Milo_lint.Lint.structural_rules]) after every rule application
    and raises {!Lint_violation} naming the offending rule.  Costs a
    full design scan per application — debugging only.  Global; off by
    default. *)

val run_cleanups : Rule.context -> Rule.t list -> D.log -> unit
(** Fire applicable cleanup rules to a bounded fixpoint, recording into
    the same log. *)

type application = { rule : Rule.t; site : Rule.site; gain : float }

val evaluate :
  Rule.context ->
  cost:(unit -> float) ->
  cleanups:Rule.t list ->
  Rule.t ->
  Rule.site ->
  float option
(** Gain of applying the rule (with cleanups) at the site: apply,
    measure, undo. *)

val greedy_step :
  ?min_gain:float ->
  Rule.context ->
  cost:(unit -> float) ->
  cleanups:Rule.t list ->
  Rule.t list ->
  application option

val greedy_pass :
  ?max_steps:int ->
  Rule.context ->
  cost:(unit -> float) ->
  cleanups:Rule.t list ->
  Rule.t list ->
  application list

type ops_state

val ops_create : unit -> ops_state
val ops_cycle : Rule.context -> ops_state -> Rule.t list -> bool
val ops_run : ?max_cycles:int -> Rule.context -> Rule.t list -> int
(** Run recognize–act to quiescence; returns the cycle count. *)

val ops_run_incremental :
  ?max_cycles:int -> ?radius:int -> Rule.context -> Rule.t list -> int
(** Recognize–act with Rete-style incremental matching: after each
    firing, only the neighbourhood of the touched components is
    re-examined; a full scan runs only to confirm quiescence. *)
