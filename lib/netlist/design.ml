(* Mutable netlist with an undo log.

   SOCRATES-style optimization applies a rule, measures the result and
   backtracks by replaying a log of changes (Section 2.2.2 of the paper).
   Every mutator here optionally records inverse information into a [log];
   [undo] restores the design exactly. *)

type resolver = Types.kind -> string -> (string * Types.dir) list

type comp = {
  id : int;
  mutable cname : string;
  mutable kind : Types.kind;
  conns : (string, int) Hashtbl.t;
}

type net = {
  nid : int;
  mutable nname : string;
  mutable npins : (int * string) list;
  mutable nport : (string * Types.dir) option;
}

type entry =
  | E_add_comp of int * string * Types.kind
  | E_remove_comp of int * string * Types.kind * (string * int) list
  | E_connect of int * string * int option * int option
  | E_add_net of int * string
  | E_remove_net of int * string * (string * Types.dir) option
  | E_set_kind of int * Types.kind * Types.kind

type log = entry list ref

(* Typed mutator errors.  A failing edit names the offending object so
   checkpoint/error reports up the stack can say *what* broke, not just
   that something did. *)
type error = {
  err_op : string;
  err_design : string;
  err_comp : string option;
  err_net : string option;
  err_pin : string option;
  err_reason : string;
}

exception Error of error

let error_to_string e =
  let ctx =
    List.filter_map
      (fun (label, v) -> Option.map (fun v -> label ^ " " ^ v) v)
      [ ("comp", e.err_comp); ("net", e.err_net); ("pin", e.err_pin) ]
  in
  Printf.sprintf "Design.%s (%s%s): %s" e.err_op e.err_design
    (match ctx with [] -> "" | l -> ", " ^ String.concat ", " l)
    e.err_reason

let () =
  Printexc.register_printer (function
    | Error e -> Some (error_to_string e)
    | _ -> None)

let design_error ~op ~design ?comp ?net ?pin fmt =
  Printf.ksprintf
    (fun reason ->
      raise
        (Error
           {
             err_op = op;
             err_design = design;
             err_comp = comp;
             err_net = net;
             err_pin = pin;
             err_reason = reason;
           }))
    fmt

type t = {
  dname : string;
  comps : (int, comp) Hashtbl.t;
  nets : (int, net) Hashtbl.t;
  mutable ports : (string * Types.dir * int) list;
  mutable next_comp : int;
  mutable next_net : int;
  mutable generation : int;
      (* bumped on every structural mutation; lets observers (e.g.
         Hashcons digests) cache per-design derived data and detect
         staleness in O(1).  Over-bumping is harmless — it only costs a
         recompute — so every low-level mutator touches it. *)
  mutable on_commit : (string option -> entry list -> unit) option;
      (* observer fired by [commit ~design] with the committed entries;
         deliberately per-design (scratch copies stay silent) and not
         propagated by [copy]. *)
}

let new_log () : log = ref []
let record log e = match log with None -> () | Some l -> l := e :: !l

let create dname =
  {
    dname;
    comps = Hashtbl.create 64;
    nets = Hashtbl.create 64;
    ports = [];
    next_comp = 0;
    next_net = 0;
    generation = 0;
    on_commit = None;
  }

let name t = t.dname
let generation t = t.generation
let touch t = t.generation <- t.generation + 1
let comp t id = Hashtbl.find t.comps id
let comp_opt t id = Hashtbl.find_opt t.comps id
let net t id = Hashtbl.find t.nets id
let net_opt t id = Hashtbl.find_opt t.nets id
let ports t = List.rev t.ports

let comps t =
  Hashtbl.fold (fun _ c acc -> c :: acc) t.comps []
  |> List.sort (fun a b -> compare a.id b.id)

let nets t =
  Hashtbl.fold (fun _ n acc -> n :: acc) t.nets []
  |> List.sort (fun a b -> compare a.nid b.nid)

let num_comps t = Hashtbl.length t.comps
let num_nets t = Hashtbl.length t.nets

let find_comp t cname =
  let found =
    Hashtbl.fold
      (fun _ c acc -> if c.cname = cname then Some c else acc)
      t.comps None
  in
  match found with Some c -> c | None -> raise Not_found

let fresh_net_raw t nname =
  touch t;
  let nid = t.next_net in
  t.next_net <- nid + 1;
  let nname = if nname = "" then Printf.sprintf "n%d" nid else nname in
  let n = { nid; nname; npins = []; nport = None } in
  Hashtbl.replace t.nets nid n;
  nid

let new_net ?log ?(name = "") t =
  let nid = fresh_net_raw t name in
  record log (E_add_net (nid, (Hashtbl.find t.nets nid).nname));
  nid

let add_port ?net:reuse t pname dir =
  touch t;
  if List.exists (fun (p, _, _) -> p = pname) t.ports then
    design_error ~op:"add_port" ~design:t.dname "duplicate port %s" pname;
  let nid = match reuse with Some nid -> nid | None -> fresh_net_raw t pname in
  let n = Hashtbl.find t.nets nid in
  (match n.nport with
  | Some (p, _) ->
      design_error ~op:"add_port" ~design:t.dname ~net:n.nname
        "net already bound to port %s" p
  | None -> n.nport <- Some (pname, dir));
  t.ports <- (pname, dir, nid) :: t.ports;
  nid

let port_net t pname =
  let rec go = function
    | [] -> raise Not_found
    | (p, _, nid) :: _ when p = pname -> nid
    | _ :: rest -> go rest
  in
  go t.ports

let add_comp ?log ?(name = "") t kind =
  touch t;
  let id = t.next_comp in
  t.next_comp <- id + 1;
  let cname = if name = "" then Printf.sprintf "u%d" id else name in
  let c = { id; cname; kind; conns = Hashtbl.create 8 } in
  Hashtbl.replace t.comps id c;
  record log (E_add_comp (id, cname, kind));
  id

let detach_pin t cid pin =
  touch t;
  let c = Hashtbl.find t.comps cid in
  match Hashtbl.find_opt c.conns pin with
  | None -> None
  | Some nid ->
      Hashtbl.remove c.conns pin;
      (match Hashtbl.find_opt t.nets nid with
      | Some n -> n.npins <- List.filter (fun p -> p <> (cid, pin)) n.npins
      | None -> ());
      Some nid

let attach_pin t cid pin nid =
  touch t;
  let c = Hashtbl.find t.comps cid in
  let n = Hashtbl.find t.nets nid in
  Hashtbl.replace c.conns pin nid;
  n.npins <- (cid, pin) :: n.npins

let connect ?log t cid pin nid =
  let prev = detach_pin t cid pin in
  attach_pin t cid pin nid;
  record log (E_connect (cid, pin, prev, Some nid))

let disconnect ?log t cid pin =
  match detach_pin t cid pin with
  | None -> ()
  | Some prev -> record log (E_connect (cid, pin, Some prev, None))

let connection t cid pin = Hashtbl.find_opt (comp t cid).conns pin

let connections t cid =
  Hashtbl.fold (fun pin nid acc -> (pin, nid) :: acc) (comp t cid).conns []
  |> List.sort compare

let remove_comp ?log t cid =
  touch t;
  let c = Hashtbl.find t.comps cid in
  let saved = connections t cid in
  List.iter (fun (pin, _) -> ignore (detach_pin t cid pin)) saved;
  Hashtbl.remove t.comps cid;
  record log (E_remove_comp (cid, c.cname, c.kind, saved))

let remove_net ?log t nid =
  touch t;
  let n = Hashtbl.find t.nets nid in
  if n.npins <> [] then begin
    let (cid, pin) = List.hd n.npins in
    design_error ~op:"remove_net" ~design:t.dname ~net:n.nname
      ?comp:(Option.map (fun c -> c.cname) (Hashtbl.find_opt t.comps cid))
      ~pin "net still has %d pin(s)" (List.length n.npins)
  end;
  if n.nport <> None then
    design_error ~op:"remove_net" ~design:t.dname ~net:n.nname
      "net is bound to a port";
  Hashtbl.remove t.nets nid;
  record log (E_remove_net (nid, n.nname, n.nport))

let set_kind ?log t cid kind =
  touch t;
  let c = Hashtbl.find t.comps cid in
  let old = c.kind in
  c.kind <- kind;
  record log (E_set_kind (cid, old, kind))

let undo_entry t =
  touch t;
  function
  | E_add_comp (cid, _, _) ->
      let c = Hashtbl.find t.comps cid in
      let pins = Hashtbl.fold (fun pin _ acc -> pin :: acc) c.conns [] in
      List.iter (fun pin -> ignore (detach_pin t cid pin)) pins;
      Hashtbl.remove t.comps cid
  | E_remove_comp (cid, cname, kind, saved) ->
      let c = { id = cid; cname; kind; conns = Hashtbl.create 8 } in
      Hashtbl.replace t.comps cid c;
      List.iter (fun (pin, nid) -> attach_pin t cid pin nid) saved
  | E_connect (cid, pin, prev, _) -> (
      ignore (detach_pin t cid pin);
      match prev with None -> () | Some nid -> attach_pin t cid pin nid)
  | E_add_net (nid, _) -> Hashtbl.remove t.nets nid
  | E_remove_net (nid, nname, nport) ->
      Hashtbl.replace t.nets nid { nid; nname; npins = []; nport }
  | E_set_kind (cid, old, _) ->
      let c = Hashtbl.find t.comps cid in
      c.kind <- old

let undo t (log : log) =
  List.iter (undo_entry t) !log;
  log := []

let entries (log : log) = List.rev !log

let commit ?label ?design (log : log) =
  (match design with
  | Some t when !log <> [] -> (
      match t.on_commit with
      | Some f -> f label (entries log)
      | None -> ())
  | Some _ | None -> ());
  log := []

let set_commit_hook t h = t.on_commit <- h

(* Forward replay of committed entries: every entry carries enough
   information to re-apply it (the redo half of the change log), so a
   recorded trajectory can be re-executed decision-for-decision on a
   restored snapshot.  Ids are preserved exactly — [next_comp]/
   [next_net] advance past replayed ids so later fresh allocations
   cannot collide. *)
let redo_entry t =
  touch t;
  function
  | E_add_comp (cid, cname, kind) ->
      Hashtbl.replace t.comps cid
        { id = cid; cname; kind; conns = Hashtbl.create 8 };
      if cid >= t.next_comp then t.next_comp <- cid + 1
  | E_remove_comp (cid, _, _, saved) ->
      List.iter (fun (pin, _) -> ignore (detach_pin t cid pin)) saved;
      Hashtbl.remove t.comps cid
  | E_connect (cid, pin, _, now) -> (
      ignore (detach_pin t cid pin);
      match now with None -> () | Some nid -> attach_pin t cid pin nid)
  | E_add_net (nid, nname) ->
      Hashtbl.replace t.nets nid { nid; nname; npins = []; nport = None };
      if nid >= t.next_net then t.next_net <- nid + 1
  | E_remove_net (nid, _, _) -> Hashtbl.remove t.nets nid
  | E_set_kind (cid, _, knew) -> (Hashtbl.find t.comps cid).kind <- knew

let redo t es = List.iter (redo_entry t) es

(* Id-exact reconstruction primitives for snapshot restore: unlike
   [add_comp]/[new_net], these insert at a caller-chosen id so a
   deserialized design is structurally identical (same ids, same
   [signature]) to the one that was serialized. *)
let restore_net t ~id ~name:nname =
  touch t;
  if Hashtbl.mem t.nets id then
    design_error ~op:"restore_net" ~design:t.dname ~net:nname
      "net id %d already present" id;
  Hashtbl.replace t.nets id { nid = id; nname; npins = []; nport = None };
  if id >= t.next_net then t.next_net <- id + 1

let restore_comp t ~id ~name:cname kind =
  touch t;
  if Hashtbl.mem t.comps id then
    design_error ~op:"restore_comp" ~design:t.dname ~comp:cname
      "comp id %d already present" id;
  Hashtbl.replace t.comps id { id; cname; kind; conns = Hashtbl.create 8 };
  if id >= t.next_comp then t.next_comp <- id + 1

let set_counters t ~next_comp ~next_net =
  t.next_comp <- max t.next_comp next_comp;
  t.next_net <- max t.next_net next_net

let counters t = (t.next_comp, t.next_net)

(* --- Queries -------------------------------------------------------- *)

let pin_dir ?resolve t cid pin =
  let c = comp t cid in
  let pins = Types.pins_of_kind ?resolve c.kind in
  match List.assoc_opt pin pins with
  | Some d -> d
  | None ->
      design_error ~op:"pin_dir" ~design:t.dname ~comp:c.cname ~pin
        "%s has no pin %s" (Types.kind_name c.kind) pin

type source = Src_comp of int * string | Src_port of string | Src_none

let driver ?resolve t nid =
  let n = net t nid in
  let from_port =
    match n.nport with
    | Some (p, Types.Input) -> Some (Src_port p)
    | Some (_, Types.Output) | None -> None
  in
  let from_comp =
    List.fold_left
      (fun acc (cid, pin) ->
        match acc with
        | Some _ -> acc
        | None ->
            if pin_dir ?resolve t cid pin = Types.Output then
              Some (Src_comp (cid, pin))
            else None)
      None n.npins
  in
  match (from_comp, from_port) with
  | Some s, _ -> s
  | None, Some s -> s
  | None, None -> Src_none

let sinks ?resolve t nid =
  let n = net t nid in
  List.filter (fun (cid, pin) -> pin_dir ?resolve t cid pin = Types.Input)
    n.npins

let fanout ?resolve t nid =
  let n = net t nid in
  let port_load =
    match n.nport with Some (_, Types.Output) -> 1 | _ -> 0
  in
  List.length (sinks ?resolve t nid) + port_load

let copy t =
  let t' = create t.dname in
  t'.next_comp <- t.next_comp;
  t'.next_net <- t.next_net;
  Hashtbl.iter
    (fun nid n ->
      Hashtbl.replace t'.nets nid
        { nid; nname = n.nname; npins = n.npins; nport = n.nport })
    t.nets;
  Hashtbl.iter
    (fun cid c ->
      Hashtbl.replace t'.comps cid
        { id = cid; cname = c.cname; kind = c.kind; conns = Hashtbl.copy c.conns })
    t.comps;
  t'.ports <- t.ports;
  t'

(* The actual validation lives in Milo_lint.Lint (the single source of
   truth for structural validity); it installs itself here at link time.
   Milo_lint cannot be a direct dependency — it sits above the netlist
   layer — hence the hook. *)
let check_hook :
    (resolver option -> t -> (unit, string list) result) ref =
  ref (fun _ t ->
      design_error ~op:"check" ~design:t.dname
        "Milo_lint is not linked (link milo_lint to use structural \
         validation)")

let set_check_hook f = check_hook := f
let check ?resolve t = !check_hook resolve t

let signature t =
  let comp_sig c =
    (c.id, c.cname, Types.kind_name c.kind, connections t c.id)
  in
  let net_sig n = (n.nid, n.nname, List.sort compare n.npins, n.nport) in
  ( List.map comp_sig (comps t),
    List.map net_sig (nets t),
    ports t )

let equal_structure a b = signature a = signature b
