(* Parser for the textual netlist format emitted by [Writer].

   Grammar (one statement per line, '#' starts a comment):

     design NAME
     port (in|out) NAME
     comp NAME KINDSPEC
     join ENDPOINT ENDPOINT*      where ENDPOINT = portname | comp.pin
*)

exception Parse_error of int * string

let fail lineno fmt =
  Printf.ksprintf (fun s -> raise (Parse_error (lineno, s))) fmt

let split_fields s =
  String.split_on_char ' ' s |> List.filter (fun x -> x <> "")

let split_commas s = String.split_on_char ',' s |> List.filter (fun x -> x <> "")

let kv_args lineno fields =
  List.map
    (fun f ->
      match String.index_opt f '=' with
      | Some i ->
          (String.sub f 0 i, String.sub f (i + 1) (String.length f - i - 1))
      | None -> fail lineno "expected key=value, got %s" f)
    fields

let get lineno kvs key =
  match List.assoc_opt key kvs with
  | Some v -> v
  | None -> fail lineno "missing argument %s" key

let get_opt kvs key default =
  match List.assoc_opt key kvs with Some v -> v | None -> default

let int_of lineno s =
  match int_of_string_opt s with
  | Some i -> i
  | None -> fail lineno "expected integer, got %s" s

let bool_of lineno s =
  match s with
  | "1" | "true" -> true
  | "0" | "false" -> false
  | _ -> fail lineno "expected boolean 0/1, got %s" s

let gate_fn_of lineno s : Types.gate_fn =
  match String.uppercase_ascii s with
  | "AND" -> And
  | "OR" -> Or
  | "NAND" -> Nand
  | "NOR" -> Nor
  | "XOR" -> Xor
  | "XNOR" -> Xnor
  | "INV" -> Inv
  | "BUF" -> Buf
  | other -> fail lineno "unknown gate function %s" other

let cmp_fn_of lineno s : Types.cmp_fn =
  match String.uppercase_ascii s with
  | "EQ" -> Eq
  | "NE" -> Ne
  | "LT" -> Lt
  | "GT" -> Gt
  | "LE" -> Le
  | "GE" -> Ge
  | other -> fail lineno "unknown comparator function %s" other

let arith_fn_of lineno s : Types.arith_fn =
  match String.uppercase_ascii s with
  | "ADD" -> Add
  | "SUB" -> Sub
  | "INC" -> Inc
  | "DEC" -> Dec
  | other -> fail lineno "unknown arithmetic function %s" other

let reg_fn_of lineno s : Types.reg_fn =
  match String.uppercase_ascii s with
  | "LOAD" -> Load
  | "SHL" -> Shift_left
  | "SHR" -> Shift_right
  | other -> fail lineno "unknown register function %s" other

let count_fn_of lineno s : Types.count_fn =
  match String.uppercase_ascii s with
  | "LOAD" -> Count_load
  | "UP" -> Count_up
  | "DOWN" -> Count_down
  | other -> fail lineno "unknown counter function %s" other

let control_of lineno s : Types.control =
  match String.uppercase_ascii s with
  | "SET" -> Set
  | "RST" | "RESET" -> Reset
  | "EN" | "ENABLE" -> Enable
  | other -> fail lineno "unknown control %s" other

let parse_kind lineno fields : Types.kind =
  match fields with
  | "gate" :: fn :: rest ->
      let n = match rest with [ n ] -> int_of lineno n | _ -> 2 in
      Gate (gate_fn_of lineno fn, n)
  | [ "const"; "VDD" ] -> Constant Vdd
  | [ "const"; "VSS" ] -> Constant Vss
  | "mux" :: rest ->
      let kvs = kv_args lineno rest in
      Multiplexor
        {
          bits = int_of lineno (get lineno kvs "bits");
          inputs = int_of lineno (get lineno kvs "inputs");
          enable = bool_of lineno (get_opt kvs "enable" "0");
        }
  | "dec" :: rest ->
      let kvs = kv_args lineno rest in
      Decoder
        {
          bits = int_of lineno (get lineno kvs "bits");
          enable = bool_of lineno (get_opt kvs "enable" "0");
        }
  | "cmp" :: rest ->
      let kvs = kv_args lineno rest in
      Comparator
        {
          bits = int_of lineno (get lineno kvs "bits");
          fns = List.map (cmp_fn_of lineno) (split_commas (get lineno kvs "fns"));
        }
  | "lu" :: rest ->
      let kvs = kv_args lineno rest in
      Logic_unit
        {
          bits = int_of lineno (get lineno kvs "bits");
          fn = gate_fn_of lineno (get lineno kvs "fn");
          inputs = int_of lineno (get lineno kvs "inputs");
        }
  | "au" :: rest ->
      let kvs = kv_args lineno rest in
      Arith_unit
        {
          bits = int_of lineno (get lineno kvs "bits");
          fns =
            List.map (arith_fn_of lineno) (split_commas (get lineno kvs "fns"));
          mode =
            (match String.uppercase_ascii (get_opt kvs "mode" "RIPPLE") with
            | "RIPPLE" -> Ripple
            | "CLA" | "LOOKAHEAD" -> Lookahead
            | other -> fail lineno "unknown carry mode %s" other);
        }
  | "reg" :: rest ->
      let kvs = kv_args lineno rest in
      Register
        {
          bits = int_of lineno (get lineno kvs "bits");
          kind =
            (match String.uppercase_ascii (get_opt kvs "type" "E") with
            | "L" | "LATCH" -> Latch
            | "E" | "EDGE" -> Edge_triggered
            | other -> fail lineno "unknown register type %s" other);
          fns = List.map (reg_fn_of lineno) (split_commas (get lineno kvs "fns"));
          controls =
            List.map (control_of lineno)
              (split_commas (get_opt kvs "controls" ""));
          inverting = bool_of lineno (get_opt kvs "inverting" "0");
        }
  | "cnt" :: rest ->
      let kvs = kv_args lineno rest in
      Counter
        {
          bits = int_of lineno (get lineno kvs "bits");
          fns =
            List.map (count_fn_of lineno) (split_commas (get lineno kvs "fns"));
          controls =
            List.map (control_of lineno)
              (split_commas (get_opt kvs "controls" ""));
        }
  | [ "macro"; m ] -> Macro m
  | [ "inst"; i ] -> Instance i
  | _ -> fail lineno "cannot parse component kind: %s" (String.concat " " fields)

let kind_of_string s = parse_kind 0 (split_fields (String.trim s))

let of_string text =
  let lines = String.split_on_char '\n' text in
  let design = ref None in
  let d lineno =
    match !design with
    | Some d -> d
    | None -> fail lineno "statement before 'design'"
  in
  let endpoint_net lineno dsn ep =
    match String.index_opt ep '.' with
    | None -> (
        try Design.port_net dsn ep
        with Not_found -> fail lineno "unknown port %s" ep)
    | Some i ->
        let cname = String.sub ep 0 i in
        let pin = String.sub ep (i + 1) (String.length ep - i - 1) in
        let c = try Design.find_comp dsn cname
          with Not_found -> fail lineno "unknown component %s" cname in
        (match Design.connection dsn c.Design.id pin with
        | Some nid -> nid
        | None -> fail lineno "%s.%s not yet joined" cname pin)
  in
  let connect_endpoint lineno dsn nid ep =
    match String.index_opt ep '.' with
    | None -> fail lineno "port %s cannot be joined to an existing net" ep
    | Some i ->
        let cname = String.sub ep 0 i in
        let pin = String.sub ep (i + 1) (String.length ep - i - 1) in
        let c = try Design.find_comp dsn cname
          with Not_found -> fail lineno "unknown component %s" cname in
        Design.connect dsn c.Design.id pin nid
  in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line =
        match String.index_opt line '#' with
        | Some j -> String.sub line 0 j
        | None -> line
      in
      match split_fields (String.trim line) with
      | [] -> ()
      | [ "design"; name ] -> design := Some (Design.create name)
      | [ "port"; "in"; p ] -> ignore (Design.add_port (d lineno) p Types.Input)
      | [ "port"; "out"; p ] ->
          ignore (Design.add_port (d lineno) p Types.Output)
      | "comp" :: name :: spec ->
          ignore (Design.add_comp ~name (d lineno) (parse_kind lineno spec))
      | "join" :: (first :: rest as eps) ->
          let dsn = d lineno in
          (* Use the first endpoint that already has a net (ports always
             do); otherwise create a fresh net. *)
          let existing =
            List.find_map
              (fun ep ->
                match String.index_opt ep '.' with
                | None -> Some (endpoint_net lineno dsn ep)
                | Some _ -> (
                    let i = String.index ep '.' in
                    let cname = String.sub ep 0 i in
                    let pin =
                      String.sub ep (i + 1) (String.length ep - i - 1)
                    in
                    match Design.find_comp dsn cname with
                    | c -> Design.connection dsn c.Design.id pin
                    | exception Not_found ->
                        fail lineno "unknown component %s" cname))
              eps
          in
          let nid =
            match existing with
            | Some nid -> nid
            | None -> Design.new_net dsn
          in
          List.iter
            (fun ep ->
              match String.index_opt ep '.' with
              | None ->
                  if endpoint_net lineno dsn ep <> nid then
                    fail lineno "cannot merge port %s into another net" ep
              | Some _ -> connect_endpoint lineno dsn nid ep)
            (first :: rest)
      | other -> fail lineno "cannot parse: %s" (String.concat " " other))
    lines;
  match !design with
  | Some d -> d
  | None -> raise (Parse_error (0, "no 'design' statement"))

let of_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  of_string text
