(** Mutable netlist with an undo log.

    The design is a graph of components (parameterized microarchitecture
    elements or library macros) and nets.  All mutators optionally record
    inverse information into a {!log}; {!undo} restores the design exactly
    — this is the change-log backtracking mechanism SOCRATES uses during
    lookahead (paper Section 2.2.2). *)

type resolver = Types.kind -> string -> (string * Types.dir) list
(** Resolves the pin interface of [Macro]/[Instance] references. *)

type comp = {
  id : int;
  mutable cname : string;
  mutable kind : Types.kind;
  conns : (string, int) Hashtbl.t;  (** pin name -> net id *)
}

type net = {
  nid : int;
  mutable nname : string;
  mutable npins : (int * string) list;  (** attached (comp, pin) pairs *)
  mutable nport : (string * Types.dir) option;
      (** design port bound to this net, if any *)
}

(** One undoable edit, with the inverse information needed to revert
    it.  Public so incremental observers (the measurement layer) can
    fold a log into their own state; treat as read-only. *)
type entry =
  | E_add_comp of int
  | E_remove_comp of int * string * Types.kind * (string * int) list
      (** id, name, kind, saved (pin, net) connections *)
  | E_connect of int * string * int option
      (** comp, pin, previous net (if any) *)
  | E_add_net of int
  | E_remove_net of int * string * (string * Types.dir) option
  | E_set_kind of int * Types.kind  (** comp, previous kind *)

type log = entry list ref

type error = {
  err_op : string;  (** the mutator that failed, e.g. ["remove_net"] *)
  err_design : string;
  err_comp : string option;  (** offending component name, if known *)
  err_net : string option;  (** offending net name, if known *)
  err_pin : string option;
  err_reason : string;
}
(** Context of a failed edit: names the offending object so error
    reports (e.g. flow checkpoints) can point at it. *)

exception Error of error
(** Raised by mutators on invalid edits (removing a connected net,
    duplicate ports, unknown pins).  A printer is registered. *)

val error_to_string : error -> string

type t

val new_log : unit -> log
val create : string -> t
val name : t -> string

val comp : t -> int -> comp
val comp_opt : t -> int -> comp option
val net : t -> int -> net
val net_opt : t -> int -> net option
val ports : t -> (string * Types.dir * int) list
val comps : t -> comp list
val nets : t -> net list
val num_comps : t -> int
val num_nets : t -> int

val find_comp : t -> string -> comp
(** Find a component by name.  @raise Not_found if absent. *)

val new_net : ?log:log -> ?name:string -> t -> int
val add_port : ?net:int -> t -> string -> Types.dir -> int
(** Declare a design port; creates (or adopts) the net it is bound to.
    Ports are not undoable: they define the design's interface.
    @raise Error on a duplicate port or an already-bound net. *)

val port_net : t -> string -> int
(** Net bound to a port.  @raise Not_found if no such port. *)

val add_comp : ?log:log -> ?name:string -> t -> Types.kind -> int
val connect : ?log:log -> t -> int -> string -> int -> unit
(** [connect t comp pin net] attaches the pin, detaching any previous
    connection first. *)

val disconnect : ?log:log -> t -> int -> string -> unit
val connection : t -> int -> string -> int option
val connections : t -> int -> (string * int) list
val remove_comp : ?log:log -> t -> int -> unit
val remove_net : ?log:log -> t -> int -> unit
(** @raise Error if the net still has pins or a port. *)

val set_kind : ?log:log -> t -> int -> Types.kind -> unit

val undo : t -> log -> unit
(** Undo every recorded edit (most recent first) and clear the log. *)

val commit : log -> unit
(** Drop the recorded edits, keeping the changes. *)

val entries : log -> entry list
(** Recorded edits in application order. *)

(** Where a net's value comes from. *)
type source = Src_comp of int * string | Src_port of string | Src_none

val pin_dir : ?resolve:resolver -> t -> int -> string -> Types.dir
val driver : ?resolve:resolver -> t -> int -> source
val sinks : ?resolve:resolver -> t -> int -> (int * string) list
val fanout : ?resolve:resolver -> t -> int -> int
(** Number of input pins plus output ports fed by the net. *)

val copy : t -> t
(** Deep structural copy. *)

val check : ?resolve:resolver -> t -> (unit, string list) result
(** Structural validation: all input pins connected, single driver per
    net, connectivity indexes consistent.  Implemented by
    [Milo_lint.Lint] (which installs itself via {!set_check_hook} at
    link time); calling it without milo_lint linked fails. *)

val set_check_hook :
  (resolver option -> t -> (unit, string list) result) -> unit
(** Install the {!check} implementation.  Called by [Milo_lint.Lint] at
    module initialization; not intended for other users. *)

val equal_structure : t -> t -> bool
(** Structural equality (used to property-test apply-then-undo). *)
