(** Mutable netlist with an undo log.

    The design is a graph of components (parameterized microarchitecture
    elements or library macros) and nets.  All mutators optionally record
    inverse information into a {!log}; {!undo} restores the design exactly
    — this is the change-log backtracking mechanism SOCRATES uses during
    lookahead (paper Section 2.2.2). *)

type resolver = Types.kind -> string -> (string * Types.dir) list
(** Resolves the pin interface of [Macro]/[Instance] references. *)

type comp = {
  id : int;
  mutable cname : string;
  mutable kind : Types.kind;
  conns : (string, int) Hashtbl.t;  (** pin name -> net id *)
}

type net = {
  nid : int;
  mutable nname : string;
  mutable npins : (int * string) list;  (** attached (comp, pin) pairs *)
  mutable nport : (string * Types.dir) option;
      (** design port bound to this net, if any *)
}

(** One edit, carrying both the inverse information needed to revert it
    ({!undo}) and the forward information needed to re-apply it
    ({!redo}) — the latter is what makes a committed change log a
    durable, replayable trajectory (the journal subsystem).  Public so
    incremental observers (the measurement layer) can fold a log into
    their own state; treat as read-only. *)
type entry =
  | E_add_comp of int * string * Types.kind  (** id, name, kind *)
  | E_remove_comp of int * string * Types.kind * (string * int) list
      (** id, name, kind, saved (pin, net) connections *)
  | E_connect of int * string * int option * int option
      (** comp, pin, previous net (if any), new net ([None] for a
          disconnect) *)
  | E_add_net of int * string  (** id, name *)
  | E_remove_net of int * string * (string * Types.dir) option
  | E_set_kind of int * Types.kind * Types.kind
      (** comp, previous kind, new kind *)

type log = entry list ref

type error = {
  err_op : string;  (** the mutator that failed, e.g. ["remove_net"] *)
  err_design : string;
  err_comp : string option;  (** offending component name, if known *)
  err_net : string option;  (** offending net name, if known *)
  err_pin : string option;
  err_reason : string;
}
(** Context of a failed edit: names the offending object so error
    reports (e.g. flow checkpoints) can point at it. *)

exception Error of error
(** Raised by mutators on invalid edits (removing a connected net,
    duplicate ports, unknown pins).  A printer is registered. *)

val error_to_string : error -> string

type t

val new_log : unit -> log
val create : string -> t
val name : t -> string

val generation : t -> int
(** Monotonic counter bumped on every structural mutation (including
    undo/redo and restore).  Derived data keyed on a design (digests,
    caches) is valid exactly while the generation is unchanged. *)

val comp : t -> int -> comp
val comp_opt : t -> int -> comp option
val net : t -> int -> net
val net_opt : t -> int -> net option
val ports : t -> (string * Types.dir * int) list
val comps : t -> comp list
val nets : t -> net list
val num_comps : t -> int
val num_nets : t -> int

val find_comp : t -> string -> comp
(** Find a component by name.  @raise Not_found if absent. *)

val new_net : ?log:log -> ?name:string -> t -> int
val add_port : ?net:int -> t -> string -> Types.dir -> int
(** Declare a design port; creates (or adopts) the net it is bound to.
    Ports are not undoable: they define the design's interface.
    @raise Error on a duplicate port or an already-bound net. *)

val port_net : t -> string -> int
(** Net bound to a port.  @raise Not_found if no such port. *)

val add_comp : ?log:log -> ?name:string -> t -> Types.kind -> int
val connect : ?log:log -> t -> int -> string -> int -> unit
(** [connect t comp pin net] attaches the pin, detaching any previous
    connection first. *)

val disconnect : ?log:log -> t -> int -> string -> unit
val connection : t -> int -> string -> int option
val connections : t -> int -> (string * int) list
val remove_comp : ?log:log -> t -> int -> unit
val remove_net : ?log:log -> t -> int -> unit
(** @raise Error if the net still has pins or a port. *)

val set_kind : ?log:log -> t -> int -> Types.kind -> unit

val undo : t -> log -> unit
(** Undo every recorded edit (most recent first) and clear the log. *)

val commit : ?label:string -> ?design:t -> log -> unit
(** Drop the recorded edits, keeping the changes.  When [design] is
    given and it has a commit hook installed ({!set_commit_hook}), the
    hook observes the committed entries (in application order) first,
    tagged with [label] (e.g. the rule or strategy that produced them).
    Without [design] the commit is silent — scratch copies and
    evaluation-only logs never reach the hook. *)

val set_commit_hook :
  t -> (string option -> entry list -> unit) option -> unit
(** Install (or clear, with [None]) this design's commit observer.
    Used by the flow journal to persist every committed change-log
    delta.  Not propagated by {!copy}. *)

val redo : t -> entry list -> unit
(** Re-apply committed entries forward (application order) — the
    inverse of {!undo}, used to replay a recorded trajectory onto a
    restored snapshot.  Ids are reproduced exactly; the fresh-id
    counters advance past every replayed id. *)

val entries : log -> entry list
(** Recorded edits in application order. *)

(** {2 Snapshot restore}

    Id-exact reconstruction: {!restore_net}/{!restore_comp} insert at a
    caller-chosen id (unlike [new_net]/[add_comp], which allocate), so
    a deserialized snapshot is structurally identical — same ids, same
    {!signature} — to the design that was serialized.  @raise Error on
    an id collision. *)

val restore_net : t -> id:int -> name:string -> unit
val restore_comp : t -> id:int -> name:string -> Types.kind -> unit

val set_counters : t -> next_comp:int -> next_net:int -> unit
(** Raise the fresh-id counters to at least the given values (never
    lowers them), so allocation resumes exactly where the serialized
    design left off. *)

val counters : t -> int * int
(** Current [(next_comp, next_net)] fresh-id counters. *)

(** Where a net's value comes from. *)
type source = Src_comp of int * string | Src_port of string | Src_none

val pin_dir : ?resolve:resolver -> t -> int -> string -> Types.dir
val driver : ?resolve:resolver -> t -> int -> source
val sinks : ?resolve:resolver -> t -> int -> (int * string) list
val fanout : ?resolve:resolver -> t -> int -> int
(** Number of input pins plus output ports fed by the net. *)

val copy : t -> t
(** Deep structural copy. *)

val check : ?resolve:resolver -> t -> (unit, string list) result
(** Structural validation: all input pins connected, single driver per
    net, connectivity indexes consistent.  Implemented by
    [Milo_lint.Lint] (which installs itself via {!set_check_hook} at
    link time); calling it without milo_lint linked fails. *)

val set_check_hook :
  (resolver option -> t -> (unit, string list) result) -> unit
(** Install the {!check} implementation.  Called by [Milo_lint.Lint] at
    module initialization; not intended for other users. *)

val equal_structure : t -> t -> bool
(** Structural equality (used to property-test apply-then-undo). *)
