(** Hash-consed structural identity: interned component kinds and
    memoized per-design digests, keyed on physical identity and
    invalidated by {!Design.generation}.

    Digests are built from canonical spec strings (never session-local
    ids), so they are stable across processes and safe to persist. *)

val kind_id : Types.kind -> int
(** Compact session-local id of an interned kind.  Equal kinds get
    equal ids; ids are NOT stable across processes — use them as
    in-memory cache keys only. *)

val kind_spec : Types.kind -> string
(** Memoized {!Writer.kind_spec}. *)

val design_digest : Design.t -> string
(** Hex MD5 of the design's structure (name, ports, nets, components,
    kinds, connectivity).  O(1) while the design's generation is
    unchanged; equal iff structurally equal (modulo digest collision). *)

val equal_structure : Design.t -> Design.t -> bool
(** Digest-based structural equality; O(1) on repeated comparisons of
    unchanged designs. *)

type stats = { digest_hits : int; digest_misses : int; interned_kinds : int }

val stats : unit -> stats
