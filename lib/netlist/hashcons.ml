(* Hash-consed structural identity.

   Three layers, each trading a traversal for a table lookup:

   - component kinds are interned: the canonical [Writer.kind_spec]
     string (and a compact session-local id) is computed once per
     distinct kind value, not once per component per traversal;
   - a design's structural digest (MD5 over a canonical serialization
     of name, ports, nets, components and connections) is memoized per
     physical design and invalidated by [Design.generation], so
     repeated hashing of an unchanged design — the journal's
     checkpoint discipline, replay verification — is O(1);
   - structural equality compares digests instead of traversing both
     designs.

   The digest itself is built from interned spec *strings*, never from
   session-local ids, so it is stable across processes: a journal
   written by one run hashes identically when replayed by another.

   The memo table holds its designs weakly (ephemeron keys): caching a
   digest never extends a design's lifetime. *)

module D = Design

(* --- Kind interning ---------------------------------------------------- *)

(* Kinds are pure immutable data, so polymorphic hashing/equality are
   exact.  The table is global and append-only: the population of
   distinct kinds in a session is small (bounded by the libraries in
   play plus micro shapes). *)
let kind_table : (Types.kind, int * string) Hashtbl.t = Hashtbl.create 256
let next_kind_id = ref 0

(* The table is shared process-wide and parallel oracle workers may
   intern kinds their scratch rewrites introduce, so every access is
   serialized: an unsynchronized find racing a resize is undefined
   behaviour.  Contention is negligible — the population of distinct
   kinds is small and the hit path is one lookup. *)
let kind_mutex = Mutex.create ()

let intern kind =
  Mutex.lock kind_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock kind_mutex)
    (fun () ->
      match Hashtbl.find_opt kind_table kind with
      | Some e -> e
      | None ->
          let id = !next_kind_id in
          incr next_kind_id;
          let e = (id, Writer.kind_spec kind) in
          Hashtbl.replace kind_table kind e;
          e)

let kind_id kind = fst (intern kind)
let kind_spec kind = snd (intern kind)

(* --- Design digests ---------------------------------------------------- *)

let hits = ref 0
let misses = ref 0

let compute_digest d =
  let buf = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "d %s\n" (D.name d);
  List.iter
    (fun (p, dir, nid) ->
      pf "p %s %c %d\n" p (match dir with Types.Input -> 'i' | Types.Output -> 'o') nid)
    (D.ports d);
  List.iter (fun (n : D.net) -> pf "n %d %s\n" n.D.nid n.D.nname) (D.nets d);
  List.iter
    (fun (c : D.comp) ->
      pf "c %d %s %s\n" c.D.id c.D.cname (kind_spec c.D.kind);
      List.iter (fun (pin, nid) -> pf "j %s %d\n" pin nid)
        (D.connections d c.D.id))
    (D.comps d);
  Digest.to_hex (Digest.string (Buffer.contents buf))

module Cache = Ephemeron.K1.Make (struct
  type t = D.t

  let equal = ( == )
  let hash d = Hashtbl.hash (D.name d)
end)

let digest_cache : (int * string) Cache.t = Cache.create 64

let design_digest d =
  match Cache.find_opt digest_cache d with
  | Some (g, dg) when g = D.generation d ->
      incr hits;
      dg
  | Some _ | None ->
      incr misses;
      (* Read the generation before serializing: if a concurrent
         mutation raced the traversal the cached entry is already
         stale and will miss next time. *)
      let g = D.generation d in
      let dg = compute_digest d in
      Cache.replace digest_cache d (g, dg);
      dg

let equal_structure a b = a == b || design_digest a = design_digest b

type stats = { digest_hits : int; digest_misses : int; interned_kinds : int }

let stats () =
  {
    digest_hits = !hits;
    digest_misses = !misses;
    interned_kinds = Hashtbl.length kind_table;
  }
