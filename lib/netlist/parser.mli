(** Parser for the textual netlist format (see {!Writer}).  This is the
    design-entry front end standing in for the paper's schematic capture
    and VHDL compiler. *)

exception Parse_error of int * string
(** Line number and message. *)

val of_string : string -> Design.t
val of_file : string -> Design.t

val kind_of_string : string -> Types.kind
(** Parse a {!Writer.kind_spec} back into a kind (the inverse used by
    snapshot deserialization).  @raise Parse_error on malformed input. *)
