(** The MILO flow of Figure 11: microarchitecture critic → logic
    compilers → technology mapper → hierarchical logic optimizer; plus
    the human-baseline comparison flow for the Figure 19 experiment. *)

module D = Milo_netlist.Design

type technology = Ecl | Cmos

val target_of : technology -> Milo_techmap.Table_map.target

val technology_name : technology -> string
(** ["ecl"] / ["cmos"] — the names the journal header and the CLI
    use. *)

val technology_of_string : string -> technology option

val seq_classifier :
  Milo_library.Technology.t list -> Milo_netlist.Types.kind -> bool
(** Sequential-kind classifier for the lint passes: micro kinds via
    [Types.is_sequential_kind], macros looked up in the given
    technologies, instances treated as opaque (sequential). *)

type stats = {
  delay : float;
  area : float;
  power : float;
  gates : int;
  comps : int;
}

val stats_of :
  ?input_arrivals:(string * float) list ->
  Milo_techmap.Table_map.target ->
  D.t ->
  stats
(** Timing/area/power of a technology-mapped design. *)

(** {2 Resilience layer}

    The flow snapshots the design after every completed stage; a failure
    anywhere past capture degrades to a {!Partial} outcome carrying the
    last good checkpoint and a structured error instead of losing all
    intermediate work to an escaping exception. *)

type stage = Capture | Micro | Compile | Techmap | Optimize

val stage_name : stage -> string
val stage_of_string : string -> stage option

type checkpoint = { ck_stage : stage; ck_design : D.t }
(** A deep-copied snapshot of the design after [ck_stage] completed. *)

type error = {
  err_stage : stage;  (** stage that was running when the flow failed *)
  err_exn : exn;  (** the original exception *)
  err_message : string;  (** structured rendering (object names kept) *)
}

type hooks = {
  before_stage : stage -> D.t -> unit;
  on_checkpoint : checkpoint -> unit;
}
(** Observation/injection points for instrumentation and the fault
    harness.  [before_stage] runs before the stage's work, on the design
    about to be transformed; raising from it fails that stage.
    [on_checkpoint] sees every snapshot as it is taken. *)

val no_hooks : hooks

type result = {
  micro_design : D.t;
  micro_applications : (string * string) list;
  optimized : D.t;
  final : stats;
  optimizer_report : Milo_optimizer.Logic_optimizer.report;
  database : Milo_compilers.Database.t;
  lint_findings : (string * Milo_lint.Diagnostic.t list) list;
  checkpoints : checkpoint list;  (** per-stage snapshots, in flow order *)
  quarantined : (string * int) list;
      (** rules quarantined during the run, with trapped-failure counts *)
  quarantine_errors : (string * string) list;
      (** first trapped exception message per quarantined rule, sorted
          by name — the "why" behind the counts *)
  quarantine_reasons : (string * Milo_rules.Engine.reason) list;
      (** why each quarantined rule was trapped: [Raised] (its code
          failed) or [Miscompiled] (the semantic guard caught it
          changing function and reverted it) *)
  guard_stats : Milo_guard.Guard.stats;
      (** semantic-guard counters for the run; all zero when [guard]
          was [Off] *)
  budget : Milo_rules.Budget.status;
  run_trace : Milo_trace.Trace.t option;
      (** the tracer passed to [run ?trace], already flushed:
          queryable for spans, events, metrics and the
          [Milo_trace.Profile] attributions *)
  certificates : Milo_absint.Certify.certificate list;
      (** static rule certificates established for the run — one per
          logic-level rule when [guard] was armed and [certify] left on,
          empty otherwise *)
  analysis : Milo_absint.Absint.summary option;
      (** abstract-interpretation facts over the optimized design;
          [None] when linting was [Off] *)
  notes : string list;
      (** structured run annotations; contains
          ["Degraded_to_sequential"] when [domains] requested a pool
          that could not be constructed and the run fell back to
          inline (bit-identical) execution *)
}

type partial = {
  failed_stage : stage;
  failure : error;
  last_good : checkpoint;  (** most recent snapshot before the failure *)
  partial_checkpoints : checkpoint list;  (** in flow order *)
  partial_micro_applications : (string * string) list;
  partial_lint_findings : (string * Milo_lint.Diagnostic.t list) list;
  partial_database : Milo_compilers.Database.t;
  partial_quarantined : (string * int) list;
  partial_quarantine_errors : (string * string) list;
  partial_quarantine_reasons : (string * Milo_rules.Engine.reason) list;
  partial_guard_stats : Milo_guard.Guard.stats;
  partial_budget : Milo_rules.Budget.status;
  partial_trace : Milo_trace.Trace.t option;
      (** flushed even on failure: open spans are force-closed, so the
          trace of a degraded run is still balanced and well-formed *)
  partial_notes : string list;  (** same annotations as [result.notes] *)
}

type outcome = Complete of result | Partial of partial

val describe_error : exn -> string
(** Structured rendering of flow failures; keeps the object names typed
    errors ({!Milo_techmap.Table_map.Unmappable}, [Design.Error],
    [Lint_error]) carry. *)

val micro_pass :
  ?max_steps:int ->
  ?budget:Milo_rules.Budget.t ->
  Milo_compilers.Database.t ->
  Milo_library.Technology.t ->
  Milo_techmap.Table_map.target ->
  Constraints.t ->
  D.t ->
  (string * string) list
(** Run the microarchitecture critic in place; returns the applied
    rules. *)

val run :
  ?technology:technology ->
  ?constraints:Constraints.t ->
  ?lint:Milo_lint.Lint.level ->
  ?incremental:bool ->
  ?budget:Milo_rules.Budget.t ->
  ?hooks:hooks ->
  ?trace:Milo_trace.Trace.t ->
  ?guard:Milo_guard.Guard.policy ->
  ?certify:bool ->
  ?journal:string ->
  ?journal_fault:(int -> unit) ->
  ?provenance:Milo_provenance.Provenance.t ->
  ?domains:int ->
  ?force_domains:bool ->
  D.t ->
  outcome
(** Run the full flow.  [lint] (default [Off]) enables the stage
    invariants: the design is linted after the microarchitecture critic,
    after compilation (including every compiled sub-design), after
    technology mapping and after the logic optimizer.  [Warn] reports to
    stderr; [Strict] raises [Milo_lint.Lint.Lint_error] on any
    Error-severity finding.

    [incremental] (default [true]) has the optimize stage construct one
    incremental measurer ([Milo_measure.Measure]) and evaluate
    candidates by delta-STA and streaming area/power; [false] forces
    full recomputation per evaluation (the pre-measurement behaviour,
    useful for cross-checking).

    [budget] (default unlimited) bounds the optimization searches: on
    exhaustion the rule passes stop cleanly with the best design so far
    and the returned [budget] status has [budget_exhausted] set.  The
    mapping and flattening stages still complete, so a 0-step budget
    yields a [Complete] outcome with an unoptimized mapped design.

    [trace] (default none — zero-overhead) installs the tracer as the
    ambient one for the duration of the run: every stage runs inside a
    [stage:<name>] span under a [flow:<design>] root, checkpoints and
    rule/search/measure activity appear in the event log, and the
    tracer is flushed (sinks run, open spans force-closed) before the
    outcome is returned.

    [guard] (default [Off]) arms the semantic guard: the compile,
    techmap and optimize stage outputs are equivalence-checked against
    the previous checkpoint (exhaustive for small input counts,
    random-vector and lock-step sequential otherwise), and the engine
    re-simulates rule applications over their touched cone, reverting
    and quarantining any rule caught changing function
    ([Engine.Miscompiled]).  A stage-level mismatch degrades the run
    to [Partial] with a [Milo_guard.Guard.Miscompile] error carrying
    the shrunk failing vector and the diverging output cone.
    [Sampled] checks a subset of rule applications with cheaper
    parameters; [Full] checks everything.

    [certify] (default [true], only meaningful with the guard armed)
    statically certifies the logic-level rules up front
    ({!Milo_absint.Certify}): rules whose rewrite is proved equivalent
    over the certification corpus skip the per-application cone
    re-simulation, collapsing most of the [Full]-guard overhead.  The
    certificates are cached per (rule, technology) across runs and
    returned in [result.certificates].  Pass [~certify:false] to force
    the pre-certification behaviour (every application re-simulated).

    [journal] (default none — zero-overhead) opens a durable write-ahead
    journal at the given path ({!Milo_journal.Journal}): the run header,
    every stage entry, every committed change-log delta (appended and
    flushed as it lands) and a full design snapshot at every stage
    checkpoint (committed with the tmp+fsync+rename discipline), closed
    by a Finish record.  A run killed at any byte leaves a journal whose
    longest valid prefix {!resume} can re-enter and {!replay} can
    re-execute.

    [journal_fault] is the crash-injection hook for the fault harness:
    called with the running record count after each journal record
    reaches the file; raising {!Milo_journal.Journal.Crash} from it
    simulates a kill at exactly that point (the journal file is left
    as-is and the exception propagates — no [Partial] degradation, no
    Finish record).

    [provenance] (default none — zero-overhead) installs the given
    recorder as the ambient one for the run
    ({!Milo_provenance.Provenance}): every committed change-log batch
    on the tracked design becomes a step record carrying the engine's
    exact cost attribution, object tags are maintained for
    critical-path blame, and the event stream mirrors the journal
    record for record so {!Milo_provenance.Trajectory.crosscheck} can
    verify one against the other.

    [domains] (default none — the legacy sequential engine paths,
    byte-for-byte) runs the optimizer's fan-out sites (timing-strategy
    dispatch, per-rule candidate evaluation, lookahead branch
    exploration) as supervised tasks over a pool of [domains] worker
    domains ({!Milo_parallel.Pool}).  Tasks evaluate on immutable
    id-preserving design snapshots; a task that raises, overruns the
    budget deadline or stops heartbeating is quarantined as a typed
    fault without poisoning the run, and results merge in a
    deterministic submission order — so [~domains:1] and [~domains:n]
    produce bit-identical designs, ledgers, journals and traces.  When
    the pool cannot be constructed (single-core host without
    [force_domains], domain spawn failure) the run degrades gracefully
    to inline supervised execution — same results, no speedup — and
    records ["Degraded_to_sequential"] in [result.notes] and as a
    trace [Note].  [force_domains] lifts the two-core floor so tests
    can exercise real multi-domain supervision anywhere.

    Any other stage failure yields [Partial]: the last good checkpoint,
    the failing stage and a structured error.  [Out_of_memory] and
    [Stack_overflow] are always re-raised. *)

val run_exn :
  ?technology:technology ->
  ?constraints:Constraints.t ->
  ?lint:Milo_lint.Lint.level ->
  ?incremental:bool ->
  ?budget:Milo_rules.Budget.t ->
  ?hooks:hooks ->
  ?trace:Milo_trace.Trace.t ->
  ?guard:Milo_guard.Guard.policy ->
  ?certify:bool ->
  ?journal:string ->
  ?provenance:Milo_provenance.Provenance.t ->
  ?domains:int ->
  ?force_domains:bool ->
  D.t ->
  result
(** Like {!run} but re-raises the original exception on a [Partial]
    outcome.  Compatibility entry point for callers that want the
    pre-checkpointing behaviour. *)

(** {2 Journal resume and replay} *)

exception Journal_error of string
(** A recovered journal cannot support the requested operation (no
    header survived, no committed checkpoint, unknown technology/stage
    names).  Distinct from recovery itself, which never refuses a
    journal. *)

val resume :
  ?hooks:hooks ->
  ?trace:Milo_trace.Trace.t ->
  ?provenance:Milo_provenance.Provenance.t ->
  ?force_domains:bool ->
  string ->
  outcome
(** [resume path] recovers the journal's longest valid prefix and
    re-enters the flow at the last committed checkpoint: the recorded
    snapshot is restored id-exactly, the budget re-armed with the
    remaining allowance ({!Milo_rules.Budget.resume}), the semantic
    guard's counters, sampling position and quarantine image restored,
    and only the stages after the checkpoint re-run (stages whose
    checkpoints committed are restored, not recomputed, so their guard
    statistics are not double-counted).  The resumed run re-journals
    into [path], so a second kill can be resumed again.  The result is
    byte-for-byte the uninterrupted run's: same final design, same
    guard statistics, same report cost.  A [trace] passed here has its
    event sequence counter re-armed at the checkpoint's recorded
    position, so resumed event numbering continues the interrupted
    run's instead of restarting at zero.

    A journal recorded with [~domains:n] re-enters with the same
    domain count (the header carries it); [force_domains] is forwarded
    to pool construction as in {!run}.  Degrading to inline execution
    on resume changes nothing observable.

    Raises {!Journal_error} when the journal has no header or no
    committed checkpoint (a run killed before its first commit has
    nothing to resume — re-run the flow from the input design). *)

type divergence = {
  div_record : int;  (** record index in the journal *)
  div_stage : string;
  div_label : string option;  (** rule/strategy of the diverging delta *)
  div_kind : string;
      (** ["redo"] (the recorded delta no longer applies), ["state"]
          (post-delta design hash mismatch), ["guard"] (the re-executed
          application changed function under the full guard),
          ["checkpoint"] (replayed design differs from the committed
          snapshot) or ["final"] (recomputed cost differs from the
          Finish record) *)
  div_detail : string;
}

type replay_report = {
  rep_path : string;
  rep_records : int;
  rep_truncated_bytes : int;
  rep_deltas : int;  (** recorded rule applications re-executed *)
  rep_checks : int;  (** full-guard equivalence checks performed *)
  rep_finished : bool;  (** the journal ends with a Finish record *)
  rep_divergences : divergence list;
}

val replay : string -> replay_report
(** [replay path] deterministically re-executes the journal's recorded
    trajectory: snapshots are adopted at the design-producing stages
    (capture, compile, techmap), every recorded change-log delta of the
    in-place stages (micro, optimize) is re-applied with
    [Design.redo], and every re-application is equivalence-checked
    with the semantic guard in [Full] mode — certificates and sampling
    ignored.  Checkpoint snapshots and the Finish record's cost are
    cross-checked along the way.  A clean journal of a sound run
    replays with zero divergences; a quarantined miscompile shows up as
    the exact record where function changed.

    Raises {!Journal_error} when no header survived recovery. *)

val human_baseline :
  ?technology:technology -> D.t -> D.t * Milo_compilers.Database.t
(** Direct compile + conservative map, no optimization. *)

val baseline_stats :
  ?technology:technology ->
  ?input_arrivals:(string * float) list ->
  D.t ->
  stats
