(** The MILO flow of Figure 11: microarchitecture critic → logic
    compilers → technology mapper → hierarchical logic optimizer; plus
    the human-baseline comparison flow for the Figure 19 experiment. *)

module D = Milo_netlist.Design

type technology = Ecl | Cmos

val target_of : technology -> Milo_techmap.Table_map.target

val seq_classifier :
  Milo_library.Technology.t list -> Milo_netlist.Types.kind -> bool
(** Sequential-kind classifier for the lint passes: micro kinds via
    [Types.is_sequential_kind], macros looked up in the given
    technologies, instances treated as opaque (sequential). *)

type stats = {
  delay : float;
  area : float;
  power : float;
  gates : int;
  comps : int;
}

val stats_of :
  ?input_arrivals:(string * float) list ->
  Milo_techmap.Table_map.target ->
  D.t ->
  stats
(** Timing/area/power of a technology-mapped design. *)

type result = {
  micro_design : D.t;
  micro_applications : (string * string) list;
  optimized : D.t;
  final : stats;
  optimizer_report : Milo_optimizer.Logic_optimizer.report;
  database : Milo_compilers.Database.t;
  lint_findings : (string * Milo_lint.Diagnostic.t list) list;
}

val micro_pass :
  ?max_steps:int ->
  Milo_compilers.Database.t ->
  Milo_library.Technology.t ->
  Milo_techmap.Table_map.target ->
  Constraints.t ->
  D.t ->
  (string * string) list
(** Run the microarchitecture critic in place; returns the applied
    rules. *)

val run :
  ?technology:technology ->
  ?constraints:Constraints.t ->
  ?lint:Milo_lint.Lint.level ->
  D.t ->
  result
(** Run the full flow.  [lint] (default [Off]) enables the stage
    invariants: the design is linted after the microarchitecture critic,
    after compilation (including every compiled sub-design), after
    technology mapping and after the logic optimizer.  [Warn] reports to
    stderr; [Strict] raises [Milo_lint.Lint.Lint_error] on any
    Error-severity finding. *)

val human_baseline :
  ?technology:technology -> D.t -> D.t * Milo_compilers.Database.t
(** Direct compile + conservative map, no optimization. *)

val baseline_stats :
  ?technology:technology ->
  ?input_arrivals:(string * float) list ->
  D.t ->
  stats
