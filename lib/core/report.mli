(** Reporting: Figure 19-style comparison rows and flow summaries. *)

type row = {
  row_name : string;
  complexity : int;
  delay_human : float;
  delay_milo : float;
  area_human : float;
  area_milo : float;
  power_human : float;
  power_milo : float;
}

val percent_improvement : float -> float -> float
val row_of_stats : name:string -> human:Flow.stats -> milo:Flow.stats -> row
val header : string
val format_row : row -> string
val print_table : row list -> unit
val summary : Flow.result -> string
(** Flow summary: final stats, applied rules, lint findings, plus
    quarantined-rule counts tagged with their reason ([raised] vs
    [miscompiled], with each rule's first trapped error), the
    semantic-guard counters when the guard did any work, and the budget
    status when a limit was hit.  When the run carried a tracer, ends
    with the hot-stages / hot-rules attribution (top-k by self-time and
    by cost improvement per millisecond). *)

val partial_summary : Flow.partial -> string
(** Summary of a degraded run: the failing stage, the structured error,
    the last good checkpoint and the resilience tail of {!summary}. *)
