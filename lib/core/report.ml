(* Result reporting: the Figure 19 comparison rows and flow summaries. *)

type row = {
  row_name : string;
  complexity : int;  (* two-input-equivalent gates *)
  delay_human : float;
  delay_milo : float;
  area_human : float;
  area_milo : float;
  power_human : float;
  power_milo : float;
}

let percent_improvement before after =
  if before <= 0.0 then 0.0 else 100.0 *. (before -. after) /. before

let row_of_stats ~name ~(human : Flow.stats) ~(milo : Flow.stats) =
  {
    row_name = name;
    complexity = human.Flow.gates;
    delay_human = human.Flow.delay;
    delay_milo = milo.Flow.delay;
    area_human = human.Flow.area;
    area_milo = milo.Flow.area;
    power_human = human.Flow.power;
    power_milo = milo.Flow.power;
  }

let header =
  Printf.sprintf "%-8s %10s | %8s %8s %6s | %8s %8s %6s" "Design"
    "Complexity" "Delay/H" "Delay/M" "Impr%" "Area/H" "Area/M" "Impr%"

let format_row r =
  Printf.sprintf "%-8s %10d | %8.2f %8.2f %5.0f%% | %8.1f %8.1f %5.0f%%"
    r.row_name r.complexity r.delay_human r.delay_milo
    (percent_improvement r.delay_human r.delay_milo)
    r.area_human r.area_milo
    (percent_improvement r.area_human r.area_milo)

let print_table rows =
  print_endline header;
  print_endline (String.make (String.length header) '-');
  List.iter (fun r -> print_endline (format_row r)) rows

(* Resilience tail shared by the complete and partial summaries:
   quarantined-rule counts tagged with the quarantine reason (raised
   vs miscompiled, with the first trapped error message when
   available), the semantic-guard counters when the guard did any
   work, and the budget line when any limit was hit. *)
let add_resilience ?(errors = []) ?(reasons = []) ?guard b ~quarantined
    ~(budget : Milo_rules.Budget.status) =
  if quarantined <> [] then begin
    Buffer.add_string b "quarantined rules:\n";
    List.iter
      (fun (rule, count) ->
        let tag =
          match List.assoc_opt rule reasons with
          | Some r -> Printf.sprintf " [%s]" (Milo_rules.Engine.reason_name r)
          | None -> ""
        in
        Buffer.add_string b
          (Printf.sprintf "  %s: %d trapped failure(s)%s\n" rule count tag);
        match List.assoc_opt rule errors with
        | Some msg ->
            Buffer.add_string b (Printf.sprintf "    first error: %s\n" msg)
        | None -> ())
      quarantined
  end;
  (match guard with
  | Some g when Milo_guard.Guard.stats_active g ->
      Buffer.add_string b
        (Format.asprintf "semantic guard: %a\n" Milo_guard.Guard.pp_stats g)
  | Some _ | None -> ());
  if budget.Milo_rules.Budget.budget_exhausted then
    Buffer.add_string b
      (Format.asprintf "budget: %a\n" Milo_rules.Budget.pp_status budget)

let summary (res : Flow.result) =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "final: delay %.2f ns, area %.1f cells, power %.1f mW, %d gates, %d comps\n"
       res.Flow.final.Flow.delay res.Flow.final.Flow.area
       res.Flow.final.Flow.power res.Flow.final.Flow.gates
       res.Flow.final.Flow.comps);
  if res.Flow.micro_applications <> [] then begin
    Buffer.add_string b "microarchitecture critic:\n";
    List.iter
      (fun (rule, descr) ->
        Buffer.add_string b (Printf.sprintf "  %s: %s\n" rule descr))
      res.Flow.micro_applications
  end;
  List.iter
    (fun (e : Milo_optimizer.Logic_optimizer.report_entry) ->
      if e.Milo_optimizer.Logic_optimizer.applications > 0 then
        Buffer.add_string b
          (Printf.sprintf "  level %s: %d rules, area %.1f -> %.1f\n"
             e.Milo_optimizer.Logic_optimizer.level_design
             e.Milo_optimizer.Logic_optimizer.applications
             e.Milo_optimizer.Logic_optimizer.area_before
             e.Milo_optimizer.Logic_optimizer.area_after))
    res.Flow.optimizer_report.Milo_optimizer.Logic_optimizer.entries;
  (match res.Flow.optimizer_report.Milo_optimizer.Logic_optimizer.timing with
  | Some t ->
      Buffer.add_string b
        (Printf.sprintf "  timing: %s, final %.2f ns, %d strategy steps\n"
           (if t.Milo_optimizer.Time_opt.met then "met" else "NOT met")
           t.Milo_optimizer.Time_opt.final_delay
           (List.length t.Milo_optimizer.Time_opt.steps))
  | None -> ());
  if res.Flow.lint_findings <> [] then begin
    Buffer.add_string b "lint:\n";
    List.iter
      (fun (stage, diags) ->
        Buffer.add_string b
          ("  "
          ^ Milo_lint.Lint.report_summary
              { Milo_lint.Lint.design_name = ""; stage = Some stage; diags }
          ^ Printf.sprintf " [%s]\n" stage))
      res.Flow.lint_findings
  end;
  (match res.Flow.analysis with
  | Some s ->
      Buffer.add_string b
        (Format.asprintf "analysis: %a\n" Milo_absint.Absint.pp_summary s)
  | None -> ());
  (match res.Flow.certificates with
  | [] -> ()
  | certs ->
      let count v =
        List.length
          (List.filter
             (fun (c : Milo_absint.Certify.certificate) ->
               c.Milo_absint.Certify.cert_verdict = v)
             certs)
      in
      Buffer.add_string b
        (Printf.sprintf
           "certificates: %d rules (%d certified, %d probabilistic, %d \
            uncertified, %d refused)\n"
           (List.length certs)
           (count Milo_absint.Certify.Certified)
           (count Milo_absint.Certify.Probabilistic)
           (count Milo_absint.Certify.Uncertified)
           (count Milo_absint.Certify.Refused)));
  List.iter
    (fun n -> Buffer.add_string b (Printf.sprintf "note: %s\n" n))
    res.Flow.notes;
  add_resilience ~errors:res.Flow.quarantine_errors
    ~reasons:res.Flow.quarantine_reasons ~guard:res.Flow.guard_stats b
    ~quarantined:res.Flow.quarantined ~budget:res.Flow.budget;
  (* Hot rules / hot stages: where the wall time went and which rules
     earned their keep, from the run's trace (if one was recorded). *)
  (match res.Flow.run_trace with
  | Some tr -> Buffer.add_string b (Milo_trace.Profile.hot_summary tr)
  | None -> ());
  Buffer.contents b

let partial_summary (p : Flow.partial) =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "PARTIAL: stage %s failed: %s\n"
       (Flow.stage_name p.Flow.failed_stage)
       p.Flow.failure.Flow.err_message);
  Buffer.add_string b
    (Printf.sprintf "last good design: after %s (%d comps, %d nets)\n"
       (Flow.stage_name p.Flow.last_good.Flow.ck_stage)
       (Milo_netlist.Design.num_comps p.Flow.last_good.Flow.ck_design)
       (Milo_netlist.Design.num_nets p.Flow.last_good.Flow.ck_design));
  Buffer.add_string b
    (Printf.sprintf "checkpoints: %s\n"
       (String.concat ", "
          (List.map
             (fun (ck : Flow.checkpoint) -> Flow.stage_name ck.Flow.ck_stage)
             p.Flow.partial_checkpoints)));
  if p.Flow.partial_lint_findings <> [] then begin
    Buffer.add_string b "lint:\n";
    List.iter
      (fun (stage, diags) ->
        Buffer.add_string b
          ("  "
          ^ Milo_lint.Lint.report_summary
              { Milo_lint.Lint.design_name = ""; stage = Some stage; diags }
          ^ Printf.sprintf " [%s]\n" stage))
      p.Flow.partial_lint_findings
  end;
  List.iter
    (fun n -> Buffer.add_string b (Printf.sprintf "note: %s\n" n))
    p.Flow.partial_notes;
  add_resilience ~errors:p.Flow.partial_quarantine_errors
    ~reasons:p.Flow.partial_quarantine_reasons ~guard:p.Flow.partial_guard_stats
    b ~quarantined:p.Flow.partial_quarantined ~budget:p.Flow.partial_budget;
  (match p.Flow.partial_trace with
  | Some tr -> Buffer.add_string b (Milo_trace.Profile.hot_summary tr)
  | None -> ());
  Buffer.contents b
