(* The MILO flow (Figure 11):

     capture -> microarchitecture critic -> logic compilers ->
     technology mapper -> logic optimizer (time / area / power
     optimizers over the five experts) -> optimized design.

   [human_baseline] is the comparison flow for the Figure 19
   experiment: direct compilation and conservative technology mapping
   with no optimization passes. *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types
module R = Milo_rules.Rule
module Database = Milo_compilers.Database
module Compile = Milo_compilers.Compile
module Table_map = Milo_techmap.Table_map

type technology = Ecl | Cmos

let target_of = function
  | Ecl -> Table_map.ecl_target ()
  | Cmos -> Table_map.cmos_target ()

(* Sequential-kind classifier for the lint passes: the netlist layer
   only knows the micro components, so mapped flip-flop/counter macros
   are looked up in the given technologies.  Instances are opaque — they
   may hide registers — so they conservatively break combinational
   paths. *)
let seq_classifier techs (kind : T.kind) =
  match kind with
  | T.Instance _ -> true
  | T.Macro m ->
      let rec go = function
        | [] -> false
        | tech :: rest -> (
            match Milo_library.Technology.find_opt tech m with
            | Some mac -> Milo_library.Macro.is_sequential mac
            | None -> go rest)
      in
      go techs
  | k -> T.is_sequential_kind k

type stats = {
  delay : float;
  area : float;
  power : float;
  gates : int;
  comps : int;
}

let stats_of ?(input_arrivals = []) target design =
  let env name = Milo_library.Technology.find target.Table_map.tech name in
  let sta = Milo_timing.Sta.analyze ~input_arrivals env design in
  {
    delay = Milo_timing.Sta.worst_delay sta;
    area = Milo_estimate.Estimate.area env design;
    power = Milo_estimate.Estimate.power env design;
    gates =
      Milo_netlist.Stats.two_input_equiv
        ~macro_gates:(fun m -> (env m).Milo_library.Macro.gates)
        design;
    comps = D.num_comps design;
  }

type result = {
  micro_design : D.t;  (** after the microarchitecture critic *)
  micro_applications : (string * string) list;  (** rule, site description *)
  optimized : D.t;  (** final technology-specific design *)
  final : stats;
  optimizer_report : Milo_optimizer.Logic_optimizer.report;
  database : Database.t;
  lint_findings : (string * Milo_lint.Diagnostic.t list) list;
      (** per-stage lint diagnostics (empty when linting is [Off]) *)
}

(* --- Microarchitecture critic pass ----------------------------------- *)

(* Cost of a microarchitecture design: compile it down, map it, measure
   (Section 6.3's statistics feedback). *)
let micro_cost db lib target constraints design () =
  let stats =
    Milo_critic.Micro_critic.evaluate_design
      ~input_arrivals:constraints.Constraints.input_arrivals db lib target
      design
  in
  let penalty =
    match constraints.Constraints.required_delay with
    | Some r when stats.Milo_critic.Micro_critic.stat_delay > r ->
        1000.0 *. (stats.Milo_critic.Micro_critic.stat_delay -. r)
    | Some _ | None -> 0.0
  in
  stats.Milo_critic.Micro_critic.stat_area
  +. (0.05 *. stats.Milo_critic.Micro_critic.stat_power)
  +. penalty

let micro_pass ?(max_steps = 16) db lib target constraints design =
  let ctx =
    R.make_context ~extra_resolve:(Database.resolver db [ lib ]) lib
      (Milo_compilers.Gate_comp.generic_set lib)
      design
  in
  let cost = micro_cost db lib target constraints design in
  let apps =
    Milo_rules.Engine.greedy_pass ~max_steps ctx ~cost ~cleanups:[]
      Milo_critic.Critic.micro
  in
  List.map
    (fun (a : Milo_rules.Engine.application) ->
      (a.Milo_rules.Engine.rule.R.rule_name, a.Milo_rules.Engine.site.R.descr))
    apps

(* --- Full MILO flow --------------------------------------------------- *)

let run ?(technology = Ecl) ?(constraints = Constraints.none)
    ?(lint = Milo_lint.Lint.Off) design =
  let db = Database.create () in
  let lib = Milo_library.Generic.get () in
  let target = target_of technology in
  (* Stage invariants: lint after the micro critic, after compilation,
     after technology mapping and after the optimizer.  Generic stages
     resolve against the design database and the generic library; mapped
     stages against the target technology too. *)
  let findings = ref [] in
  let lint_stage ~techs stage d =
    let diags =
      Milo_lint.Lint.check_stage
        ~resolve:(Database.resolver db techs)
        ~is_sequential:(seq_classifier techs) ~level:lint ~stage d
    in
    if diags <> [] then findings := (stage, diags) :: !findings
  in
  let generic = [ lib ] in
  let mapped = [ target.Table_map.tech; lib ] in
  let micro_design = D.copy design in
  let micro_applications =
    micro_pass db lib target constraints micro_design
  in
  lint_stage ~techs:generic "micro-critic" micro_design;
  let expanded = Compile.expand_design db lib micro_design in
  lint_stage ~techs:generic "compile" expanded;
  if lint <> Milo_lint.Lint.Off then
    List.iter
      (fun name ->
        lint_stage ~techs:generic ("compile:" ^ name) (Database.get db name))
      (Database.names db);
  let required =
    Option.value ~default:infinity constraints.Constraints.required_delay
  in
  let optimized, optimizer_report =
    Milo_optimizer.Logic_optimizer.optimize ~required
      ~input_arrivals:constraints.Constraints.input_arrivals
      ~on_mapped:(lint_stage ~techs:mapped "techmap") db target expanded
  in
  lint_stage ~techs:mapped "optimized" optimized;
  let final =
    stats_of ~input_arrivals:constraints.Constraints.input_arrivals target
      optimized
  in
  {
    micro_design;
    micro_applications;
    optimized;
    final;
    optimizer_report;
    database = db;
    lint_findings = List.rev !findings;
  }

(* --- Human baseline --------------------------------------------------- *)

(* What a careful but unaided engineer enters at the technology level:
   the compiled design mapped macro for macro, no optimization.
   Conservative choices: ripple carry everywhere, standard power. *)
let human_baseline ?(technology = Ecl) design =
  let db = Database.create () in
  let lib = Milo_library.Generic.get () in
  let target = target_of technology in
  let expanded = Compile.expand_design db lib design in
  let flat = Database.flatten db expanded in
  let mapped = Table_map.map_design target flat in
  (mapped, db)

let baseline_stats ?(technology = Ecl) ?(input_arrivals = []) design =
  let target = target_of technology in
  let mapped, _ = human_baseline ~technology design in
  stats_of ~input_arrivals target mapped
