(* The MILO flow (Figure 11):

     capture -> microarchitecture critic -> logic compilers ->
     technology mapper -> logic optimizer (time / area / power
     optimizers over the five experts) -> optimized design.

   [human_baseline] is the comparison flow for the Figure 19
   experiment: direct compilation and conservative technology mapping
   with no optimization passes. *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types
module R = Milo_rules.Rule
module Database = Milo_compilers.Database
module Compile = Milo_compilers.Compile
module Table_map = Milo_techmap.Table_map
module Guard = Milo_guard.Guard

type technology = Ecl | Cmos

let target_of = function
  | Ecl -> Table_map.ecl_target ()
  | Cmos -> Table_map.cmos_target ()

(* Sequential-kind classifier for the lint passes: the netlist layer
   only knows the micro components, so mapped flip-flop/counter macros
   are looked up in the given technologies.  Instances are opaque — they
   may hide registers — so they conservatively break combinational
   paths. *)
let seq_classifier techs (kind : T.kind) =
  match kind with
  | T.Instance _ -> true
  | T.Macro m ->
      let rec go = function
        | [] -> false
        | tech :: rest -> (
            match Milo_library.Technology.find_opt tech m with
            | Some mac -> Milo_library.Macro.is_sequential mac
            | None -> go rest)
      in
      go techs
  | k -> T.is_sequential_kind k

type stats = {
  delay : float;
  area : float;
  power : float;
  gates : int;
  comps : int;
}

let stats_of ?(input_arrivals = []) target design =
  let env name = Milo_library.Technology.find target.Table_map.tech name in
  let sta = Milo_timing.Sta.analyze ~input_arrivals env design in
  {
    delay = Milo_timing.Sta.worst_delay sta;
    area = Milo_estimate.Estimate.area env design;
    power = Milo_estimate.Estimate.power env design;
    gates =
      Milo_netlist.Stats.two_input_equiv
        ~macro_gates:(fun m -> (env m).Milo_library.Macro.gates)
        design;
    comps = D.num_comps design;
  }

(* --- Resilience layer ------------------------------------------------- *)

(* The flow snapshots the design after every stage; a failure anywhere
   past capture degrades to a [Partial] outcome carrying the last good
   checkpoint and a structured error, instead of losing all
   intermediate work to an escaping exception (the Section 6 feedback
   loop assumes a failed constraint still returns a usable design). *)

type stage = Capture | Micro | Compile | Techmap | Optimize

let stage_name = function
  | Capture -> "capture"
  | Micro -> "micro"
  | Compile -> "compile"
  | Techmap -> "techmap"
  | Optimize -> "optimize"

let stage_of_string = function
  | "capture" -> Some Capture
  | "micro" -> Some Micro
  | "compile" -> Some Compile
  | "techmap" -> Some Techmap
  | "optimize" -> Some Optimize
  | _ -> None

type checkpoint = { ck_stage : stage; ck_design : D.t }

type error = {
  err_stage : stage;  (** stage that was running when the flow failed *)
  err_exn : exn;  (** the original exception *)
  err_message : string;  (** structured rendering (object names kept) *)
}

(* Stage hooks: observation/injection points for instrumentation and
   the fault harness.  [before_stage] runs before the stage's work on
   the design about to be transformed; raising from it fails that
   stage.  [on_checkpoint] sees every snapshot as it is taken. *)
type hooks = {
  before_stage : stage -> D.t -> unit;
  on_checkpoint : checkpoint -> unit;
}

let no_hooks =
  { before_stage = (fun _ _ -> ()); on_checkpoint = (fun _ -> ()) }

type result = {
  micro_design : D.t;  (** after the microarchitecture critic *)
  micro_applications : (string * string) list;  (** rule, site description *)
  optimized : D.t;  (** final technology-specific design *)
  final : stats;
  optimizer_report : Milo_optimizer.Logic_optimizer.report;
  database : Database.t;
  lint_findings : (string * Milo_lint.Diagnostic.t list) list;
      (** per-stage lint diagnostics (empty when linting is [Off]) *)
  checkpoints : checkpoint list;  (** per-stage snapshots, in flow order *)
  quarantined : (string * int) list;
      (** rules quarantined during the run, with trapped-failure counts *)
  quarantine_errors : (string * string) list;
      (** first trapped exception message per quarantined rule *)
  quarantine_reasons : (string * Milo_rules.Engine.reason) list;
      (** why each quarantined rule was trapped: [Raised] or
          [Miscompiled] *)
  guard_stats : Guard.stats;
      (** semantic-guard counters (all zero when the guard was [Off]) *)
  budget : Milo_rules.Budget.status;
  run_trace : Milo_trace.Trace.t option;
      (** the tracer passed to [run ?trace], flushed — queryable for
          spans, events, metrics and the profile *)
  certificates : Milo_absint.Certify.certificate list;
      (** static rule certificates established for the run (empty when
          the guard was [Off] or [certify] was [false]) *)
  analysis : Milo_absint.Absint.summary option;
      (** abstract-interpretation facts over the optimized design
          ([None] when linting was [Off]) *)
}

type partial = {
  failed_stage : stage;
  failure : error;
  last_good : checkpoint;  (** most recent snapshot before the failure *)
  partial_checkpoints : checkpoint list;  (** in flow order *)
  partial_micro_applications : (string * string) list;
  partial_lint_findings : (string * Milo_lint.Diagnostic.t list) list;
  partial_database : Database.t;
  partial_quarantined : (string * int) list;
  partial_quarantine_errors : (string * string) list;
  partial_quarantine_reasons : (string * Milo_rules.Engine.reason) list;
  partial_guard_stats : Guard.stats;
  partial_budget : Milo_rules.Budget.status;
  partial_trace : Milo_trace.Trace.t option;
}

type outcome = Complete of result | Partial of partial

(* Structured rendering keeping the object names typed errors carry. *)
let describe_error e =
  match e with
  | Table_map.Unmappable u ->
      "unmappable: " ^ Table_map.unmappable_to_string u
  | D.Error de -> D.error_to_string de
  | Milo_lint.Lint.Lint_error r ->
      "lint: " ^ Milo_lint.Lint.report_summary r
  | Milo_rules.Engine.Lint_violation (rule, _) ->
      Printf.sprintf "lint violation after rule %s" rule
  | Guard.Miscompile { guard_stage; divergence } ->
      Printf.sprintf "miscompile after %s: %s" guard_stage
        (Guard.describe divergence)
  | e -> Printexc.to_string e

(* --- Microarchitecture critic pass ----------------------------------- *)

(* Cost of a microarchitecture design: compile it down, map it, measure
   (Section 6.3's statistics feedback). *)
let micro_cost db lib target constraints design () =
  let stats =
    Milo_critic.Micro_critic.evaluate_design
      ~input_arrivals:constraints.Constraints.input_arrivals db lib target
      design
  in
  let penalty =
    match constraints.Constraints.required_delay with
    | Some r when stats.Milo_critic.Micro_critic.stat_delay > r ->
        1000.0 *. (stats.Milo_critic.Micro_critic.stat_delay -. r)
    | Some _ | None -> 0.0
  in
  stats.Milo_critic.Micro_critic.stat_area
  +. (0.05 *. stats.Milo_critic.Micro_critic.stat_power)
  +. penalty

let micro_pass ?(max_steps = 16) ?budget db lib target constraints design =
  let ctx =
    R.make_context ~extra_resolve:(Database.resolver db [ lib ]) lib
      (Milo_compilers.Gate_comp.generic_set lib)
      design
  in
  let cost = micro_cost db lib target constraints design in
  let apps =
    Milo_rules.Engine.greedy_pass ~max_steps ?budget ctx ~cost ~cleanups:[]
      Milo_critic.Critic.micro
  in
  List.map
    (fun (a : Milo_rules.Engine.application) ->
      (a.Milo_rules.Engine.rule.R.rule_name, a.Milo_rules.Engine.site.R.descr))
    apps

(* --- Full MILO flow --------------------------------------------------- *)

let run ?(technology = Ecl) ?(constraints = Constraints.none)
    ?(lint = Milo_lint.Lint.Off) ?(incremental = true) ?budget
    ?(hooks = no_hooks) ?trace ?(guard = Guard.Off) ?(certify = true) design =
  (* Install the tracer (if any) as the ambient one for the whole run,
     so every layer's probes report into it; restored on exit. *)
  (match trace with
  | None -> (fun f -> f ())
  | Some t -> Milo_trace.Trace.with_tracer t)
  @@ fun () ->
  let budget =
    match budget with Some b -> b | None -> Milo_rules.Budget.unlimited ()
  in
  Milo_rules.Engine.quarantine_reset ();
  (* Semantic guard: one stats record shared between the engine's
     rule-level cone checks (armed here, disarmed on exit) and the
     stage-level equivalence checks below. *)
  let gstats = Guard.fresh_stats () in
  Milo_rules.Engine.set_rule_guard ~budget ~stats:gstats guard;
  Milo_trace.Trace.open_span ("flow:" ^ D.name design);
  Milo_trace.Trace.set_stage (stage_name Capture);
  Milo_trace.Trace.open_span ("stage:" ^ stage_name Capture);
  let db = Database.create () in
  let lib = Milo_library.Generic.get () in
  let target = target_of technology in
  (* Stage invariants: lint after the micro critic, after compilation,
     after technology mapping and after the optimizer.  Generic stages
     resolve against the design database and the generic library; mapped
     stages against the target technology too. *)
  let findings = ref [] in
  let lint_stage ~techs stage d =
    let diags =
      Milo_lint.Lint.check_stage
        ~resolve:(Database.resolver db techs)
        ~is_sequential:(seq_classifier techs) ~level:lint ~stage d
    in
    if diags <> [] then findings := (stage, diags) :: !findings
  in
  let generic = [ lib ] in
  let mapped = [ target.Table_map.tech; lib ] in
  (* Checkpointing: a deep copy after every completed stage, so any
     later failure degrades to the last good design. *)
  let checkpoints = ref [] in
  let checkpoint stage d =
    let ck = { ck_stage = stage; ck_design = D.copy d } in
    checkpoints := ck :: !checkpoints;
    if Milo_trace.Trace.enabled () then
      Milo_trace.Trace.emit
        (Milo_trace.Trace.Checkpoint
           {
             stage = stage_name stage;
             comps = D.num_comps d;
             nets = D.num_nets d;
           });
    hooks.on_checkpoint ck
  in
  (* Stage guards: before a stage's checkpoint is taken, its output is
     equivalence-checked against the previous stage's (known-good)
     checkpoint.  A mismatch raises [Guard.Miscompile] — degrading the
     run to [Partial] with a shrunk counterexample — instead of letting
     a functionally wrong design flow on. *)
  let ck_design stage =
    (List.find (fun c -> c.ck_stage = stage) !checkpoints).ck_design
  in
  let guard_params =
    if guard = Guard.Full then Guard.full_params else Guard.sampled_params
  in
  let stage_guard label ~techs ref_d cand_d =
    if guard <> Guard.Off then begin
      gstats.Guard.stage_checks <- gstats.Guard.stage_checks + 1;
      let env = Milo_sim.Simulator.env_of_techs techs in
      match
        Guard.check ~params:guard_params ~is_seq:(seq_classifier techs) env
          ref_d env cand_d
      with
      | None -> ()
      | Some divergence ->
          gstats.Guard.stage_mismatches <- gstats.Guard.stage_mismatches + 1;
          raise (Guard.Miscompile { guard_stage = label; divergence })
    end
  in
  let current = ref Capture in
  let enter stage d =
    (* One span per stage: close the previous stage's span (which
       force-closes anything a fault left open below it) and open the
       next.  The terminal flush closes the last one. *)
    if Milo_trace.Trace.enabled () then begin
      Milo_trace.Trace.close_span ("stage:" ^ stage_name !current);
      Milo_trace.Trace.set_stage (stage_name stage);
      Milo_trace.Trace.open_span ("stage:" ^ stage_name stage)
    end;
    current := stage;
    hooks.before_stage stage d
  in
  let micro_applications = ref [] in
  (* Static rule certification (the [lib/absint] replacement for
     per-application re-simulation): rules whose LHS≡RHS is proved once
     over the certification corpus are registered with the engine, whose
     rule guard then skips the dynamic cone check for them.  The proof
     is per (rule, technology) — independent of the user design — and
     cached across runs, so the cost amortizes to nothing. *)
  let certificates = ref [] in
  if guard <> Guard.Off && certify then begin
    certificates :=
      Milo_absint.Certify.certify_rules target
        Milo_critic.Critic.all_logic_level;
    Milo_rules.Engine.set_certified
      (Milo_absint.Certify.certified_names !certificates)
  end;
  checkpoint Capture design;
  match
    let micro_design = D.copy design in
    enter Micro micro_design;
    micro_applications :=
      micro_pass ~budget db lib target constraints micro_design;
    lint_stage ~techs:generic "micro-critic" micro_design;
    checkpoint Micro micro_design;
    enter Compile micro_design;
    let expanded = Compile.expand_design db lib micro_design in
    lint_stage ~techs:generic "compile" expanded;
    if lint <> Milo_lint.Lint.Off then
      List.iter
        (fun name ->
          lint_stage ~techs:generic ("compile:" ^ name) (Database.get db name))
        (Database.names db);
    (* The compile check flattens a copy, so a flattening bug is also
       caught here rather than shipped into mapping. *)
    stage_guard "compile" ~techs:generic (ck_design Micro)
      (Database.flatten db (D.copy expanded));
    checkpoint Compile expanded;
    enter Techmap expanded;
    let required =
      Option.value ~default:infinity constraints.Constraints.required_delay
    in
    let optimized, optimizer_report =
      Milo_optimizer.Logic_optimizer.optimize ~required
        ~input_arrivals:constraints.Constraints.input_arrivals ~incremental
        ~on_mapped:(fun d ->
          lint_stage ~techs:mapped "techmap" d;
          stage_guard "techmap" ~techs:mapped
            (Database.flatten db (D.copy (ck_design Compile)))
            d;
          checkpoint Techmap d;
          enter Optimize d)
        ~budget db target expanded
    in
    lint_stage ~techs:mapped "optimized" optimized;
    stage_guard "optimize" ~techs:mapped (ck_design Techmap) optimized;
    checkpoint Optimize optimized;
    (* Analysis stage: abstract-interpretation facts over the final
       design.  The fact-driven lint passes report through the same
       findings channel as the structural ones. *)
    let analysis =
      if lint = Milo_lint.Lint.Off then None
      else begin
        let st =
          Milo_absint.Absint.analyze
            ~resolve:(Database.resolver db mapped)
            (Milo_absint.Absint.env_of_techs mapped)
            optimized
        in
        let diags = Milo_absint.Lint_facts.all st in
        if diags <> [] then findings := ("analysis", diags) :: !findings;
        Some (Milo_absint.Absint.summary st)
      end
    in
    let final =
      stats_of ~input_arrivals:constraints.Constraints.input_arrivals target
        optimized
    in
    (micro_design, optimized, final, optimizer_report, analysis)
  with
  | micro_design, optimized, final, optimizer_report, analysis ->
      (* Flush closes the open stage/root spans and runs the sinks, so
         the trace is complete before the caller sees the result. *)
      Milo_rules.Engine.clear_rule_guard ();
      Milo_rules.Engine.clear_certified ();
      (match trace with Some t -> Milo_trace.Trace.flush t | None -> ());
      Complete
        {
          micro_design;
          micro_applications = !micro_applications;
          optimized;
          final;
          optimizer_report;
          database = db;
          lint_findings = List.rev !findings;
          checkpoints = List.rev !checkpoints;
          quarantined = Milo_rules.Engine.quarantined ();
          quarantine_errors = Milo_rules.Engine.quarantined_errors ();
          quarantine_reasons = Milo_rules.Engine.quarantined_reasons ();
          guard_stats = gstats;
          budget = Milo_rules.Budget.status budget;
          run_trace = trace;
          certificates = !certificates;
          analysis;
        }
  | exception ((Out_of_memory | Stack_overflow) as e) -> raise e
  | exception e ->
      (* A faulted run still flushes: open spans are force-closed and
         streaming sinks see a well-formed trace up to the failure. *)
      Milo_rules.Engine.clear_rule_guard ();
      Milo_rules.Engine.clear_certified ();
      (match trace with Some t -> Milo_trace.Trace.flush t | None -> ());
      Partial
        {
          failed_stage = !current;
          failure =
            { err_stage = !current; err_exn = e; err_message = describe_error e };
          last_good = List.hd !checkpoints;
          partial_checkpoints = List.rev !checkpoints;
          partial_micro_applications = !micro_applications;
          partial_lint_findings = List.rev !findings;
          partial_database = db;
          partial_quarantined = Milo_rules.Engine.quarantined ();
          partial_quarantine_errors = Milo_rules.Engine.quarantined_errors ();
          partial_quarantine_reasons = Milo_rules.Engine.quarantined_reasons ();
          partial_guard_stats = gstats;
          partial_budget = Milo_rules.Budget.status budget;
          partial_trace = trace;
        }

let run_exn ?technology ?constraints ?lint ?incremental ?budget ?hooks ?trace
    ?guard ?certify design =
  match
    run ?technology ?constraints ?lint ?incremental ?budget ?hooks ?trace
      ?guard ?certify design
  with
  | Complete r -> r
  | Partial p -> raise p.failure.err_exn

(* --- Human baseline --------------------------------------------------- *)

(* What a careful but unaided engineer enters at the technology level:
   the compiled design mapped macro for macro, no optimization.
   Conservative choices: ripple carry everywhere, standard power. *)
let human_baseline ?(technology = Ecl) design =
  let db = Database.create () in
  let lib = Milo_library.Generic.get () in
  let target = target_of technology in
  let expanded = Compile.expand_design db lib design in
  let flat = Database.flatten db expanded in
  let mapped = Table_map.map_design target flat in
  (mapped, db)

let baseline_stats ?(technology = Ecl) ?(input_arrivals = []) design =
  let target = target_of technology in
  let mapped, _ = human_baseline ~technology design in
  stats_of ~input_arrivals target mapped
