(* The MILO flow (Figure 11):

     capture -> microarchitecture critic -> logic compilers ->
     technology mapper -> logic optimizer (time / area / power
     optimizers over the five experts) -> optimized design.

   [human_baseline] is the comparison flow for the Figure 19
   experiment: direct compilation and conservative technology mapping
   with no optimization passes. *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types
module R = Milo_rules.Rule
module Database = Milo_compilers.Database
module Compile = Milo_compilers.Compile
module Table_map = Milo_techmap.Table_map
module Guard = Milo_guard.Guard
module J = Milo_journal.Journal
module P = Milo_provenance.Provenance

type technology = Ecl | Cmos

let target_of = function
  | Ecl -> Table_map.ecl_target ()
  | Cmos -> Table_map.cmos_target ()

let technology_name = function Ecl -> "ecl" | Cmos -> "cmos"

let technology_of_string = function
  | "ecl" -> Some Ecl
  | "cmos" -> Some Cmos
  | _ -> None

(* Sequential-kind classifier for the lint passes: the netlist layer
   only knows the micro components, so mapped flip-flop/counter macros
   are looked up in the given technologies.  Instances are opaque — they
   may hide registers — so they conservatively break combinational
   paths. *)
let seq_classifier techs (kind : T.kind) =
  match kind with
  | T.Instance _ -> true
  | T.Macro m ->
      let rec go = function
        | [] -> false
        | tech :: rest -> (
            match Milo_library.Technology.find_opt tech m with
            | Some mac -> Milo_library.Macro.is_sequential mac
            | None -> go rest)
      in
      go techs
  | k -> T.is_sequential_kind k

type stats = {
  delay : float;
  area : float;
  power : float;
  gates : int;
  comps : int;
}

let stats_of ?(input_arrivals = []) target design =
  let env name = Milo_library.Technology.find target.Table_map.tech name in
  let sta = Milo_timing.Sta.analyze ~input_arrivals env design in
  {
    delay = Milo_timing.Sta.worst_delay sta;
    area = Milo_estimate.Estimate.area env design;
    power = Milo_estimate.Estimate.power env design;
    gates =
      Milo_netlist.Stats.two_input_equiv
        ~macro_gates:(fun m -> (env m).Milo_library.Macro.gates)
        design;
    comps = D.num_comps design;
  }

(* --- Resilience layer ------------------------------------------------- *)

(* The flow snapshots the design after every stage; a failure anywhere
   past capture degrades to a [Partial] outcome carrying the last good
   checkpoint and a structured error, instead of losing all
   intermediate work to an escaping exception (the Section 6 feedback
   loop assumes a failed constraint still returns a usable design). *)

type stage = Capture | Micro | Compile | Techmap | Optimize

let stage_name = function
  | Capture -> "capture"
  | Micro -> "micro"
  | Compile -> "compile"
  | Techmap -> "techmap"
  | Optimize -> "optimize"

let stage_of_string = function
  | "capture" -> Some Capture
  | "micro" -> Some Micro
  | "compile" -> Some Compile
  | "techmap" -> Some Techmap
  | "optimize" -> Some Optimize
  | _ -> None

type checkpoint = { ck_stage : stage; ck_design : D.t }

type error = {
  err_stage : stage;  (** stage that was running when the flow failed *)
  err_exn : exn;  (** the original exception *)
  err_message : string;  (** structured rendering (object names kept) *)
}

(* Stage hooks: observation/injection points for instrumentation and
   the fault harness.  [before_stage] runs before the stage's work on
   the design about to be transformed; raising from it fails that
   stage.  [on_checkpoint] sees every snapshot as it is taken. *)
type hooks = {
  before_stage : stage -> D.t -> unit;
  on_checkpoint : checkpoint -> unit;
}

let no_hooks =
  { before_stage = (fun _ _ -> ()); on_checkpoint = (fun _ -> ()) }

type result = {
  micro_design : D.t;  (** after the microarchitecture critic *)
  micro_applications : (string * string) list;  (** rule, site description *)
  optimized : D.t;  (** final technology-specific design *)
  final : stats;
  optimizer_report : Milo_optimizer.Logic_optimizer.report;
  database : Database.t;
  lint_findings : (string * Milo_lint.Diagnostic.t list) list;
      (** per-stage lint diagnostics (empty when linting is [Off]) *)
  checkpoints : checkpoint list;  (** per-stage snapshots, in flow order *)
  quarantined : (string * int) list;
      (** rules quarantined during the run, with trapped-failure counts *)
  quarantine_errors : (string * string) list;
      (** first trapped exception message per quarantined rule *)
  quarantine_reasons : (string * Milo_rules.Engine.reason) list;
      (** why each quarantined rule was trapped: [Raised] or
          [Miscompiled] *)
  guard_stats : Guard.stats;
      (** semantic-guard counters (all zero when the guard was [Off]) *)
  budget : Milo_rules.Budget.status;
  run_trace : Milo_trace.Trace.t option;
      (** the tracer passed to [run ?trace], flushed — queryable for
          spans, events, metrics and the profile *)
  certificates : Milo_absint.Certify.certificate list;
      (** static rule certificates established for the run (empty when
          the guard was [Off] or [certify] was [false]) *)
  analysis : Milo_absint.Absint.summary option;
      (** abstract-interpretation facts over the optimized design
          ([None] when linting was [Off]) *)
  notes : string list;
      (** structured run annotations, e.g. ["Degraded_to_sequential"]
          when a requested domain pool could not be constructed *)
}

type partial = {
  failed_stage : stage;
  failure : error;
  last_good : checkpoint;  (** most recent snapshot before the failure *)
  partial_checkpoints : checkpoint list;  (** in flow order *)
  partial_micro_applications : (string * string) list;
  partial_lint_findings : (string * Milo_lint.Diagnostic.t list) list;
  partial_database : Database.t;
  partial_quarantined : (string * int) list;
  partial_quarantine_errors : (string * string) list;
  partial_quarantine_reasons : (string * Milo_rules.Engine.reason) list;
  partial_guard_stats : Guard.stats;
  partial_budget : Milo_rules.Budget.status;
  partial_trace : Milo_trace.Trace.t option;
  partial_notes : string list;
}

type outcome = Complete of result | Partial of partial

(* Structured rendering keeping the object names typed errors carry. *)
let describe_error e =
  match e with
  | Table_map.Unmappable u ->
      "unmappable: " ^ Table_map.unmappable_to_string u
  | D.Error de -> D.error_to_string de
  | Milo_lint.Lint.Lint_error r ->
      "lint: " ^ Milo_lint.Lint.report_summary r
  | Milo_rules.Engine.Lint_violation (rule, _) ->
      Printf.sprintf "lint violation after rule %s" rule
  | Guard.Miscompile { guard_stage; divergence } ->
      Printf.sprintf "miscompile after %s: %s" guard_stage
        (Guard.describe divergence)
  | e -> Printexc.to_string e

(* --- Microarchitecture critic pass ----------------------------------- *)

(* Cost of a microarchitecture design: compile it down, map it, measure
   (Section 6.3's statistics feedback). *)
let micro_cost db lib target constraints design () =
  let stats =
    Milo_critic.Micro_critic.evaluate_design
      ~input_arrivals:constraints.Constraints.input_arrivals db lib target
      design
  in
  let penalty =
    match constraints.Constraints.required_delay with
    | Some r when stats.Milo_critic.Micro_critic.stat_delay > r ->
        1000.0 *. (stats.Milo_critic.Micro_critic.stat_delay -. r)
    | Some _ | None -> 0.0
  in
  stats.Milo_critic.Micro_critic.stat_area
  +. (0.05 *. stats.Milo_critic.Micro_critic.stat_power)
  +. penalty

let micro_pass ?(max_steps = 16) ?budget db lib target constraints design =
  let ctx =
    R.make_context ~extra_resolve:(Database.resolver db [ lib ]) lib
      (Milo_compilers.Gate_comp.generic_set lib)
      design
  in
  let cost = micro_cost db lib target constraints design in
  let apps =
    Milo_rules.Engine.greedy_pass ~max_steps ?budget ctx ~cost ~cleanups:[]
      Milo_critic.Critic.micro
  in
  List.map
    (fun (a : Milo_rules.Engine.application) ->
      (a.Milo_rules.Engine.rule.R.rule_name, a.Milo_rules.Engine.site.R.descr))
    apps

(* --- Journal integration ---------------------------------------------- *)

exception Journal_error of string

let () =
  Printexc.register_printer (function
    | Journal_error msg -> Some ("journal error: " ^ msg)
    | _ -> None)

let stage_index = function
  | Capture -> 0
  | Micro -> 1
  | Compile -> 2
  | Techmap -> 3
  | Optimize -> 4

(* Everything a resumed run re-arms from the last committed checkpoint:
   the recovered per-stage snapshots, the report fragments accumulated
   before the kill, and the guard/quarantine counters whose continuation
   keeps the resumed statistics identical to an uninterrupted run's. *)
type resume_point = {
  rp_stage : stage;  (* last committed checkpoint *)
  rp_designs : (stage * D.t) list;
  rp_micro : (string * string) list;
  rp_levels : Milo_optimizer.Logic_optimizer.report_entry list;
  rp_timing : Milo_optimizer.Time_opt.outcome option;
  rp_guard : int array;
  rp_tick : int;
  rp_seen : string list;
  rp_trace : int;  (* tracer event count at the checkpoint *)
  rp_quarantine : (string * int * string * Milo_rules.Engine.reason) list;
}

let timing_to_journal (o : Milo_optimizer.Time_opt.outcome) =
  {
    J.t_met = o.Milo_optimizer.Time_opt.met;
    t_final = o.Milo_optimizer.Time_opt.final_delay;
    t_steps =
      List.map
        (fun (s : Milo_optimizer.Time_opt.step) ->
          ( s.Milo_optimizer.Time_opt.step_strategy,
            s.Milo_optimizer.Time_opt.step_detail,
            s.Milo_optimizer.Time_opt.delay_before,
            s.Milo_optimizer.Time_opt.delay_after ))
        o.Milo_optimizer.Time_opt.steps;
  }

let timing_of_journal (t : J.timing) =
  {
    Milo_optimizer.Time_opt.met = t.J.t_met;
    final_delay = t.J.t_final;
    steps =
      List.map
        (fun (strat, detail, before, after) ->
          {
            Milo_optimizer.Time_opt.step_strategy = strat;
            step_detail = detail;
            delay_before = before;
            delay_after = after;
          })
        t.J.t_steps;
  }

let levels_to_journal entries =
  List.map
    (fun (e : Milo_optimizer.Logic_optimizer.report_entry) ->
      ( e.Milo_optimizer.Logic_optimizer.level_design,
        e.Milo_optimizer.Logic_optimizer.applications,
        e.Milo_optimizer.Logic_optimizer.area_before,
        e.Milo_optimizer.Logic_optimizer.area_after ))
    entries

let levels_of_journal levels =
  List.map
    (fun (name, apps, before, after) ->
      {
        Milo_optimizer.Logic_optimizer.level_design = name;
        applications = apps;
        area_before = before;
        area_after = after;
      })
    levels

let reason_of_name = function
  | "miscompiled" -> Milo_rules.Engine.Miscompiled
  | _ -> Milo_rules.Engine.Raised

(* --- Full MILO flow --------------------------------------------------- *)

let run_impl ~technology ~constraints ~lint ~incremental ~budget ~hooks ~trace
    ~guard ~certify ~journal ~journal_fault ~provenance ~domains ~force_domains
    ~resume design =
  (* Install the tracer (if any) as the ambient one for the whole run,
     so every layer's probes report into it; restored on exit. *)
  (match trace with
  | None -> (fun f -> f ())
  | Some t -> Milo_trace.Trace.with_tracer t)
  @@ fun () ->
  (* Same ambient discipline for the provenance recorder: the engine's
     attribution probes find it without any layer threading it down. *)
  (match provenance with
  | None -> (fun f -> f ())
  | Some p -> P.with_recorder p)
  @@ fun () ->
  let budget =
    match budget with Some b -> b | None -> Milo_rules.Budget.unlimited ()
  in
  (* Parallel runtime: [None] keeps the legacy sequential engine paths;
     [Some n] runs the fan-out sites under supervised-task semantics —
     pooled across [n] domains when a pool comes up, inline on this
     domain otherwise.  Inline and pooled merge identically, so the
     degraded run is bit-identical to the parallel one; the degradation
     is still recorded so operators can see the speedup was lost. *)
  let run_notes = ref [] in
  let pool, exec =
    let deadline = Milo_rules.Budget.deadline_time budget in
    match domains with
    | None -> (None, Milo_parallel.Exec.sequential)
    | Some n when n <= 1 -> (None, Milo_parallel.Exec.inline ?deadline ())
    | Some n -> (
        match
          Milo_parallel.Pool.create ~force:force_domains ~domains:n ()
        with
        | Some p -> (Some p, Milo_parallel.Exec.pooled ?deadline p)
        | None ->
            run_notes := "Degraded_to_sequential" :: !run_notes;
            (None, Milo_parallel.Exec.inline ?deadline ()))
  in
  let shutdown_pool () =
    match pool with Some p -> Milo_parallel.Pool.shutdown p | None -> ()
  in
  Milo_rules.Engine.quarantine_reset ();
  if !run_notes <> [] && Milo_trace.Trace.enabled () then
    Milo_trace.Trace.emit
      (Milo_trace.Trace.Note
         "Degraded_to_sequential: domain pool construction failed; \
          continuing inline with identical results");
  (* Semantic guard: one stats record shared between the engine's
     rule-level cone checks (armed here, disarmed on exit) and the
     stage-level equivalence checks below. *)
  let gstats = Guard.fresh_stats () in
  Milo_rules.Engine.set_rule_guard ~budget ~stats:gstats guard;
  (* Journal writer: the header carries everything [resume] needs to
     re-issue this call.  Created before the first checkpoint — and, on
     a resume, after recovery has already read the previous image, so
     truncating here is safe. *)
  let jw =
    match journal with
    | None -> None
    | Some path ->
        let timeout, max_steps, max_evals = Milo_rules.Budget.limits budget in
        Some
          (J.create ?fault:journal_fault path
             {
               J.h_design = D.name design;
               h_hash = J.design_hash design;
               h_tech = technology_name technology;
               h_required =
                 Option.value ~default:infinity
                   constraints.Constraints.required_delay;
               h_arrivals = constraints.Constraints.input_arrivals;
               h_lint = Milo_lint.Lint.level_name lint;
               h_incremental = incremental;
               h_guard = Guard.policy_name guard;
               h_certify = certify;
               h_timeout = timeout;
               h_max_steps = max_steps;
               h_max_evals = max_evals;
               h_domains = domains;
             })
  in
  (* The recorder's run record mirrors the journal header, and its
     budget probe snapshots consumption onto every step record.  The
     probe is a closure so the provenance library stays below the
     rules layer. *)
  (match provenance with
  | None -> ()
  | Some p ->
      P.set_run p ~design:(D.name design)
        ~tech:(technology_name technology) ~hash:(J.design_hash design);
      P.set_budget_probe p
        (Some
           (fun () ->
             let st = Milo_rules.Budget.status budget in
             ( st.Milo_rules.Budget.steps_used,
               st.Milo_rules.Budget.evals_used,
               st.Milo_rules.Budget.elapsed ))));
  let micro_applications = ref [] in
  let levels_ref = ref [] in
  let timing_ref = ref None in
  (* Re-arm recorded state before any stage runs, so a resumed run's
     counters continue exactly where the interrupted run stopped. *)
  (match resume with
  | None -> ()
  | Some rp ->
      gstats.Guard.stage_checks <- rp.rp_guard.(0);
      gstats.Guard.stage_mismatches <- rp.rp_guard.(1);
      gstats.Guard.rule_checks <- rp.rp_guard.(2);
      gstats.Guard.rule_mismatches <- rp.rp_guard.(3);
      gstats.Guard.rule_skipped <- rp.rp_guard.(4);
      gstats.Guard.rule_certified <- rp.rp_guard.(5);
      Milo_rules.Engine.restore_guard_sample_state rp.rp_tick rp.rp_seen;
      Milo_rules.Engine.quarantine_restore rp.rp_quarantine;
      (* Tracer sequence numbers continue from the interrupted run, so
         trace events (and trajectory records keyed to them) stay
         aligned with the journal across the kill. *)
      (match trace with
      | Some t -> Milo_trace.Trace.restore_seq t rp.rp_trace
      | None -> ());
      micro_applications := rp.rp_micro;
      levels_ref := rp.rp_levels;
      timing_ref := rp.rp_timing);
  let resumed_past s =
    match resume with
    | Some rp -> stage_index rp.rp_stage >= stage_index s
    | None -> false
  in
  let restored s =
    match resume with
    | Some rp -> Option.map D.copy (List.assoc_opt s rp.rp_designs)
    | None -> None
  in
  let require_restored s =
    match restored s with
    | Some d -> d
    | None ->
        raise
          (Journal_error ("journal lacks the " ^ stage_name s ^ " checkpoint"))
  in
  Milo_trace.Trace.open_span ("flow:" ^ D.name design);
  Milo_trace.Trace.set_stage (stage_name Capture);
  Milo_trace.Trace.open_span ("stage:" ^ stage_name Capture);
  let db = Database.create () in
  let lib = Milo_library.Generic.get () in
  let target = target_of technology in
  (* Stage invariants: lint after the micro critic, after compilation,
     after technology mapping and after the optimizer.  Generic stages
     resolve against the design database and the generic library; mapped
     stages against the target technology too. *)
  let findings = ref [] in
  let lint_stage ~techs stage d =
    let diags =
      Milo_lint.Lint.check_stage
        ~resolve:(Database.resolver db techs)
        ~is_sequential:(seq_classifier techs) ~level:lint ~stage d
    in
    if diags <> [] then findings := (stage, diags) :: !findings
  in
  let generic = [ lib ] in
  let mapped = [ target.Table_map.tech; lib ] in
  (* Checkpointing: a deep copy after every completed stage, so any
     later failure degrades to the last good design. *)
  let checkpoints = ref [] in
  let checkpoint stage d =
    let ck = { ck_stage = stage; ck_design = D.copy d } in
    checkpoints := ck :: !checkpoints;
    (* Journal commit: the snapshot plus every counter a resume must
       re-arm, written with the tmp+rename discipline so the file always
       holds a whole checkpoint or none of it. *)
    (match jw with
    | None -> ()
    | Some w ->
        let st = Milo_rules.Budget.status budget in
        let tick, seen =
          match Milo_rules.Engine.guard_sample_state () with
          | Some s -> s
          | None -> (0, [])
        in
        J.commit w
          (J.Checkpoint
             {
               J.ck_stage = stage_name stage;
               ck_steps = st.Milo_rules.Budget.steps_used;
               ck_evals = st.Milo_rules.Budget.evals_used;
               ck_elapsed = st.Milo_rules.Budget.elapsed;
               ck_guard =
                 [|
                   gstats.Guard.stage_checks;
                   gstats.Guard.stage_mismatches;
                   gstats.Guard.rule_checks;
                   gstats.Guard.rule_mismatches;
                   gstats.Guard.rule_skipped;
                   gstats.Guard.rule_certified;
                 |];
               ck_tick = tick;
               ck_seen = seen;
               ck_trace =
                 (match trace with
                 | Some t -> Milo_trace.Trace.event_count t
                 | None -> 0);
               ck_quarantine =
                 List.map
                   (fun (r, c, m, reason) ->
                     (r, c, m, Milo_rules.Engine.reason_name reason))
                   (Milo_rules.Engine.quarantine_dump ());
               ck_micro = !micro_applications;
               ck_levels = levels_to_journal !levels_ref;
               ck_timing = Option.map timing_to_journal !timing_ref;
               ck_design = ck.ck_design;
             }));
    (match provenance with
    | Some p -> P.observe_checkpoint p ~stage:(stage_name stage) d
    | None -> ());
    if Milo_trace.Trace.enabled () then
      Milo_trace.Trace.emit
        (Milo_trace.Trace.Checkpoint
           {
             stage = stage_name stage;
             comps = D.num_comps d;
             nets = D.num_nets d;
           });
    hooks.on_checkpoint ck
  in
  (* Stage guards: before a stage's checkpoint is taken, its output is
     equivalence-checked against the previous stage's (known-good)
     checkpoint.  A mismatch raises [Guard.Miscompile] — degrading the
     run to [Partial] with a shrunk counterexample — instead of letting
     a functionally wrong design flow on. *)
  let ck_design stage =
    (List.find (fun c -> c.ck_stage = stage) !checkpoints).ck_design
  in
  let guard_params =
    if guard = Guard.Full then Guard.full_params else Guard.sampled_params
  in
  let stage_guard label ~techs ref_d cand_d =
    if guard <> Guard.Off then begin
      gstats.Guard.stage_checks <- gstats.Guard.stage_checks + 1;
      let env = Milo_sim.Simulator.env_of_techs techs in
      match
        Guard.check ~params:guard_params ~is_seq:(seq_classifier techs) env
          ref_d env cand_d
      with
      | None -> ()
      | Some divergence ->
          gstats.Guard.stage_mismatches <- gstats.Guard.stage_mismatches + 1;
          raise (Guard.Miscompile { guard_stage = label; divergence })
    end
  in
  let current = ref Capture in
  let enter stage d =
    (* One span per stage: close the previous stage's span (which
       force-closes anything a fault left open below it) and open the
       next.  The terminal flush closes the last one. *)
    if Milo_trace.Trace.enabled () then begin
      Milo_trace.Trace.close_span ("stage:" ^ stage_name !current);
      Milo_trace.Trace.set_stage (stage_name stage);
      Milo_trace.Trace.open_span ("stage:" ^ stage_name stage)
    end;
    current := stage;
    (match jw with
    | Some w -> J.append w (J.Stage (stage_name stage))
    | None -> ());
    (match provenance with
    | Some p -> P.observe_stage p (stage_name stage)
    | None -> ());
    hooks.before_stage stage d
  in
  (* Delta tracking: the design the current stage transforms in place
     gets a commit hook, so every committed change-log batch (rule and
     strategy applications, electric cleanups) is appended to the
     journal as it lands, tagged with the post-commit design hash.
     Scratch copies (lookahead, the critic's inner evaluations) have no
     hook and stay silent. *)
  let tracked = ref None in
  let untrack () =
    (match !tracked with Some d -> D.set_commit_hook d None | None -> ());
    tracked := None
  in
  let track d =
    if Option.is_some jw || Option.is_some provenance then begin
      (* Switching the tracked design switches id spaces (micro netlist
         vs. flattened mapped design): the recorder's object tags from
         the old space would silently mislabel objects in the new. *)
      (match (!tracked, provenance) with
      | Some prev, Some p when prev != d -> P.retarget p
      | _ -> ());
      untrack ();
      tracked := Some d;
      D.set_commit_hook d
        (Some
           (fun label entries ->
             let hash = J.design_hash d in
             (match jw with
             | Some w ->
                 J.append w
                   (J.Delta
                      {
                        d_stage = stage_name !current;
                        d_label = label;
                        d_hash = Some hash;
                        d_entries = entries;
                      })
             | None -> ());
             match provenance with
             | Some p ->
                 P.observe_commit p ~stage:(stage_name !current) ~label ~hash
                   d entries
             | None -> ()))
    end
  in
  (* Static rule certification (the [lib/absint] replacement for
     per-application re-simulation): rules whose LHS≡RHS is proved once
     over the certification corpus are registered with the engine, whose
     rule guard then skips the dynamic cone check for them.  The proof
     is per (rule, technology) — independent of the user design — and
     cached across runs, so the cost amortizes to nothing. *)
  let certificates = ref [] in
  if guard <> Guard.Off && certify then begin
    certificates :=
      Milo_absint.Certify.certify_rules target
        Milo_critic.Critic.all_logic_level;
    Milo_rules.Engine.set_certified
      (Milo_absint.Certify.certified_names !certificates)
  end;
  checkpoint Capture design;
  match
    let micro_design =
      if resumed_past Micro then begin
        (* The critic's applications are part of the committed
           checkpoint: restore its product and counters, skip the
           pass. *)
        let d = require_restored Micro in
        enter Micro d;
        track d;
        checkpoint Micro d;
        d
      end
      else begin
        let d = D.copy design in
        enter Micro d;
        track d;
        micro_applications := micro_pass ~budget db lib target constraints d;
        lint_stage ~techs:generic "micro-critic" d;
        checkpoint Micro d;
        d
      end
    in
    enter Compile micro_design;
    let expanded_for_techmap =
      if resumed_past Techmap then begin
        (* The compile product is only consumed by the mapper; with a
           restored techmap snapshot the expansion is skipped entirely
           and the recorded compile snapshot re-checkpointed for the
           result's history. *)
        (match restored Compile with
        | Some d -> checkpoint Compile d
        | None -> ());
        None
      end
      else begin
        (* Compilation is deterministic from the micro design, so a
           resume at the compile checkpoint recomputes it (the database
           cannot be journaled) but skips the already-counted stage
           checks. *)
        let expanded = Compile.expand_design db lib micro_design in
        if not (resumed_past Compile) then begin
          lint_stage ~techs:generic "compile" expanded;
          if lint <> Milo_lint.Lint.Off then
            List.iter
              (fun name ->
                lint_stage ~techs:generic ("compile:" ^ name)
                  (Database.get db name))
              (Database.names db);
          (* The compile check flattens a copy, so a flattening bug is
             also caught here rather than shipped into mapping. *)
          stage_guard "compile" ~techs:generic (ck_design Micro)
            (Database.flatten db (D.copy expanded))
        end;
        checkpoint Compile expanded;
        Some expanded
      end
    in
    let required =
      Option.value ~default:infinity constraints.Constraints.required_delay
    in
    let input_arrivals = constraints.Constraints.input_arrivals in
    let optimized =
      match expanded_for_techmap with
      | Some expanded ->
          enter Techmap expanded;
          let optimized, report =
            Milo_optimizer.Logic_optimizer.optimize ~exec ~required
              ~input_arrivals ~incremental
              ~on_mapped:(fun d levels ->
                levels_ref := levels;
                lint_stage ~techs:mapped "techmap" d;
                stage_guard "techmap" ~techs:mapped
                  (Database.flatten db (D.copy (ck_design Compile)))
                  d;
                checkpoint Techmap d;
                enter Optimize d;
                track d)
              ~budget db target expanded
          in
          levels_ref := report.Milo_optimizer.Logic_optimizer.entries;
          timing_ref := report.Milo_optimizer.Logic_optimizer.timing;
          optimized
      | None ->
          if resumed_past Optimize then begin
            (* Mapping and optimization both committed before the kill:
               re-checkpoint the recorded snapshots; only the
               downstream analysis and statistics are recomputed. *)
            let tm = require_restored Techmap in
            enter Techmap tm;
            checkpoint Techmap tm;
            let opt = require_restored Optimize in
            enter Optimize opt;
            track opt;
            opt
          end
          else begin
            (* Resume at the techmap checkpoint: re-enter the optimizer
               at its flat phase on the restored snapshot. *)
            let tm = require_restored Techmap in
            enter Techmap tm;
            checkpoint Techmap tm;
            enter Optimize tm;
            track tm;
            let optimized, report =
              Milo_optimizer.Logic_optimizer.optimize_flat ~exec ~required
                ~input_arrivals ~incremental ~budget target tm
            in
            timing_ref := report.Milo_optimizer.Logic_optimizer.timing;
            optimized
          end
    in
    if not (resumed_past Optimize) then begin
      lint_stage ~techs:mapped "optimized" optimized;
      stage_guard "optimize" ~techs:mapped (ck_design Techmap) optimized
    end;
    checkpoint Optimize optimized;
    (* Analysis stage: abstract-interpretation facts over the final
       design.  The fact-driven lint passes report through the same
       findings channel as the structural ones. *)
    let analysis =
      if lint = Milo_lint.Lint.Off then None
      else begin
        let st =
          Milo_absint.Absint.analyze
            ~resolve:(Database.resolver db mapped)
            (Milo_absint.Absint.env_of_techs mapped)
            optimized
        in
        let diags = Milo_absint.Lint_facts.all st in
        if diags <> [] then findings := ("analysis", diags) :: !findings;
        Some (Milo_absint.Absint.summary st)
      end
    in
    let final = stats_of ~input_arrivals target optimized in
    let optimizer_report =
      {
        Milo_optimizer.Logic_optimizer.entries = !levels_ref;
        timing = !timing_ref;
      }
    in
    (micro_design, optimized, final, optimizer_report, analysis)
  with
  | micro_design, optimized, final, optimizer_report, analysis ->
      (* Flush closes the open stage/root spans and runs the sinks, so
         the trace is complete before the caller sees the result. *)
      untrack ();
      shutdown_pool ();
      Milo_rules.Engine.clear_rule_guard ();
      Milo_rules.Engine.clear_certified ();
      (match jw with
      | Some w ->
          J.commit w
            (J.Finish
               {
                 f_outcome = "complete";
                 f_delay = final.delay;
                 f_area = final.area;
                 f_power = final.power;
                 f_gates = final.gates;
                 f_comps = final.comps;
               });
          J.close w
      | None -> ());
      (match provenance with
      | Some p ->
          P.observe_finish p ~outcome:"complete"
            {
              Milo_trace.Trace.delay = final.delay;
              area = final.area;
              power = final.power;
            }
      | None -> ());
      (match trace with Some t -> Milo_trace.Trace.flush t | None -> ());
      Complete
        {
          micro_design;
          micro_applications = !micro_applications;
          optimized;
          final;
          optimizer_report;
          database = db;
          lint_findings = List.rev !findings;
          checkpoints = List.rev !checkpoints;
          quarantined = Milo_rules.Engine.quarantined ();
          quarantine_errors = Milo_rules.Engine.quarantined_errors ();
          quarantine_reasons = Milo_rules.Engine.quarantined_reasons ();
          guard_stats = gstats;
          budget = Milo_rules.Budget.status budget;
          run_trace = trace;
          certificates = !certificates;
          analysis;
          notes = List.rev !run_notes;
        }
  | exception ((Out_of_memory | Stack_overflow) as e) -> raise e
  | exception (J.Crash _ as e) ->
      (* Simulated kill from the fault harness: the journal file stays
         exactly as the crash left it — no Finish record, no Partial
         degradation — but the process-global engine state is cleared so
         an in-process harness can keep running flows. *)
      untrack ();
      shutdown_pool ();
      Milo_rules.Engine.clear_rule_guard ();
      Milo_rules.Engine.clear_certified ();
      (match jw with
      | Some w -> ( try J.close w with Sys_error _ -> ())
      | None -> ());
      raise e
  | exception e ->
      (* A faulted run still flushes: open spans are force-closed and
         streaming sinks see a well-formed trace up to the failure. *)
      untrack ();
      shutdown_pool ();
      Milo_rules.Engine.clear_rule_guard ();
      Milo_rules.Engine.clear_certified ();
      (match jw with
      | Some w -> (
          try
            J.commit w
              (J.Finish
                 {
                   f_outcome = "partial";
                   f_delay = 0.0;
                   f_area = 0.0;
                   f_power = 0.0;
                   f_gates = 0;
                   f_comps = 0;
                 });
            J.close w
          with Sys_error _ -> ())
      | None -> ());
      (match provenance with
      | Some p ->
          P.observe_finish p ~outcome:"partial"
            { Milo_trace.Trace.delay = 0.0; area = 0.0; power = 0.0 }
      | None -> ());
      (match trace with Some t -> Milo_trace.Trace.flush t | None -> ());
      Partial
        {
          failed_stage = !current;
          failure =
            { err_stage = !current; err_exn = e; err_message = describe_error e };
          last_good = List.hd !checkpoints;
          partial_checkpoints = List.rev !checkpoints;
          partial_micro_applications = !micro_applications;
          partial_lint_findings = List.rev !findings;
          partial_database = db;
          partial_quarantined = Milo_rules.Engine.quarantined ();
          partial_quarantine_errors = Milo_rules.Engine.quarantined_errors ();
          partial_quarantine_reasons = Milo_rules.Engine.quarantined_reasons ();
          partial_guard_stats = gstats;
          partial_budget = Milo_rules.Budget.status budget;
          partial_trace = trace;
          partial_notes = List.rev !run_notes;
        }

let run ?(technology = Ecl) ?(constraints = Constraints.none)
    ?(lint = Milo_lint.Lint.Off) ?(incremental = true) ?budget
    ?(hooks = no_hooks) ?trace ?(guard = Guard.Off) ?(certify = true) ?journal
    ?journal_fault ?provenance ?domains ?(force_domains = false) design =
  run_impl ~technology ~constraints ~lint ~incremental ~budget ~hooks ~trace
    ~guard ~certify ~journal ~journal_fault ~provenance ~domains ~force_domains
    ~resume:None design

let run_exn ?technology ?constraints ?lint ?incremental ?budget ?hooks ?trace
    ?guard ?certify ?journal ?provenance ?domains ?force_domains design =
  match
    run ?technology ?constraints ?lint ?incremental ?budget ?hooks ?trace
      ?guard ?certify ?journal ?provenance ?domains ?force_domains design
  with
  | Complete r -> r
  | Partial p -> raise p.failure.err_exn

(* --- Resume ------------------------------------------------------------ *)

let resume ?(hooks = no_hooks) ?trace ?provenance ?(force_domains = false)
    path =
  let rc = J.recover path in
  let header =
    match J.header rc with
    | Some h -> h
    | None -> raise (Journal_error "no run header survived recovery")
  in
  let last =
    match J.last_checkpoint rc with
    | Some ck -> ck
    | None -> raise (Journal_error "no committed checkpoint survived recovery")
  in
  let technology =
    match technology_of_string header.J.h_tech with
    | Some t -> t
    | None -> raise (Journal_error ("unknown technology " ^ header.J.h_tech))
  in
  let lint =
    match Milo_lint.Lint.level_of_string header.J.h_lint with
    | Some l -> l
    | None -> raise (Journal_error ("unknown lint level " ^ header.J.h_lint))
  in
  let guard =
    match Guard.policy_of_string header.J.h_guard with
    | Some g -> g
    | None -> raise (Journal_error ("unknown guard policy " ^ header.J.h_guard))
  in
  let rp_stage =
    match stage_of_string last.J.ck_stage with
    | Some s -> s
    | None -> raise (Journal_error ("unknown stage " ^ last.J.ck_stage))
  in
  let constraints =
    {
      Constraints.required_delay =
        (if header.J.h_required = infinity then None
         else Some header.J.h_required);
      max_area = None;
      max_power = None;
      input_arrivals = header.J.h_arrivals;
    }
  in
  (* Latest snapshot per stage wins — each run writes each stage once,
     so this is belt and braces against hand-edited journals. *)
  let designs =
    List.fold_left
      (fun acc (ck : J.checkpoint) ->
        match stage_of_string ck.J.ck_stage with
        | Some s -> (s, ck.J.ck_design) :: List.remove_assoc s acc
        | None -> acc)
      [] (J.checkpoints rc)
  in
  let need =
    match rp_stage with
    | Capture -> [ Capture ]
    | Micro | Compile -> [ Capture; Micro ]
    | Techmap -> [ Capture; Micro; Techmap ]
    | Optimize -> [ Capture; Micro; Techmap; Optimize ]
  in
  List.iter
    (fun s ->
      if not (List.mem_assoc s designs) then
        raise
          (Journal_error ("journal lacks the " ^ stage_name s ^ " checkpoint")))
    need;
  let capture = D.copy (List.assoc Capture designs) in
  let guard_counters = Array.make 6 0 in
  Array.blit last.J.ck_guard 0 guard_counters 0
    (min 6 (Array.length last.J.ck_guard));
  (* Budgets are re-armed with the remainder: original limits, counters
     pre-charged, wall clock back-dated by the recorded elapsed time. *)
  let budget =
    Milo_rules.Budget.resume ?timeout:header.J.h_timeout
      ?max_steps:header.J.h_max_steps ?max_evals:header.J.h_max_evals
      ~steps:last.J.ck_steps ~evals:last.J.ck_evals ~elapsed:last.J.ck_elapsed
      ()
  in
  let rp =
    {
      rp_stage;
      rp_designs = designs;
      rp_micro = last.J.ck_micro;
      rp_levels = levels_of_journal last.J.ck_levels;
      rp_timing = Option.map timing_of_journal last.J.ck_timing;
      rp_guard = guard_counters;
      rp_tick = last.J.ck_tick;
      rp_seen = last.J.ck_seen;
      rp_trace = last.J.ck_trace;
      rp_quarantine =
        List.map
          (fun (r, c, m, reason) -> (r, c, m, reason_of_name reason))
          last.J.ck_quarantine;
    }
  in
  (* The recorded domain count is re-entered exactly: a run journaled
     at [--domains n] resumes under the same supervised-task semantics,
     so the merged trajectory continues bit-identically (degrading to
     inline if the pool no longer comes up changes nothing
     observable). *)
  run_impl ~technology ~constraints ~lint ~incremental:header.J.h_incremental
    ~budget:(Some budget) ~hooks ~trace ~guard ~certify:header.J.h_certify
    ~journal:(Some path) ~journal_fault:None ~provenance
    ~domains:header.J.h_domains ~force_domains ~resume:(Some rp) capture

(* --- Replay ------------------------------------------------------------ *)

type divergence = {
  div_record : int;  (** record index in the journal *)
  div_stage : string;
  div_label : string option;  (** rule/strategy of the diverging delta *)
  div_kind : string;  (** ["redo"], ["state"], ["guard"], ["checkpoint"] or ["final"] *)
  div_detail : string;
}

type replay_report = {
  rep_path : string;
  rep_records : int;
  rep_truncated_bytes : int;
  rep_deltas : int;  (** recorded rule applications re-executed *)
  rep_checks : int;  (** full-guard equivalence checks performed *)
  rep_finished : bool;
  rep_divergences : divergence list;
}

let replay path =
  let rc = J.recover path in
  let header =
    match J.header rc with
    | Some h -> h
    | None -> raise (Journal_error "no run header survived recovery")
  in
  let technology =
    match technology_of_string header.J.h_tech with
    | Some t -> t
    | None -> raise (Journal_error ("unknown technology " ^ header.J.h_tech))
  in
  let target = target_of technology in
  let lib = Milo_library.Generic.get () in
  let generic = [ lib ] in
  let mapped = [ target.Table_map.tech; lib ] in
  let divergences = ref [] in
  let deltas = ref 0 and checks = ref 0 in
  let diverge idx stage label kind detail =
    divergences :=
      {
        div_record = idx;
        div_stage = stage;
        div_label = label;
        div_kind = kind;
        div_detail = detail;
      }
      :: !divergences
  in
  (* In-place stages replay onto the tracked design; design-producing
     stages (compile, techmap) adopt their committed snapshot, since
     their deltas describe the construction of a different design. *)
  let in_place stage = stage = "micro" || stage = "optimize" in
  let techs_of stage = if stage = "optimize" then mapped else generic in
  (* Every recorded application is re-simulated under the full guard
     parameters, certificates and sampling ignored — replay is the
     offline microscope for a divergence the cheap in-run checks let
     through. *)
  let guard_divergence stage refd cand =
    incr checks;
    let techs = techs_of stage in
    let env = Milo_sim.Simulator.env_of_techs techs in
    match
      Guard.check ~params:Guard.full_params ~is_seq:(seq_classifier techs) env
        refd env cand
    with
    | None -> None
    | Some d -> Some (Guard.describe d)
  in
  let cur = ref None in
  List.iteri
    (fun idx record ->
      match record with
      | J.Header _ | J.Stage _ -> ()
      | J.Delta { d_stage; d_label; d_hash; d_entries } -> (
          match !cur with
          | Some d when in_place d_stage -> (
              incr deltas;
              let pre = D.copy d in
              match D.redo d d_entries with
              | () -> (
                  (match d_hash with
                  | Some h when J.design_hash d <> h ->
                      diverge idx d_stage d_label "state"
                        "design hash after redo differs from the recorded one"
                  | Some _ | None -> ());
                  match guard_divergence d_stage pre d with
                  | Some desc -> diverge idx d_stage d_label "guard" desc
                  | None -> ())
              | exception ((Out_of_memory | Stack_overflow) as e) -> raise e
              | exception e ->
                  diverge idx d_stage d_label "redo" (describe_error e);
                  cur := Some pre)
          | Some _ | None -> ())
      | J.Checkpoint ck ->
          (match !cur with
          | Some d when in_place ck.J.ck_stage ->
              if not (Milo_netlist.Hashcons.equal_structure d ck.J.ck_design)
              then
                diverge idx ck.J.ck_stage None "checkpoint"
                  "replayed design differs from the committed snapshot"
          | Some _ | None -> ());
          cur := Some (D.copy ck.J.ck_design)
      | J.Finish f ->
          if f.f_outcome = "complete" then (
            match !cur with
            | Some d ->
                let s =
                  stats_of ~input_arrivals:header.J.h_arrivals target d
                in
                let near a b =
                  a = b || abs_float (a -. b) <= 1e-9 *. (1.0 +. abs_float b)
                in
                if
                  not
                    (near s.delay f.f_delay && near s.area f.f_area
                   && near s.power f.f_power && s.gates = f.f_gates
                   && s.comps = f.f_comps)
                then
                  diverge idx "finish" None "final"
                    (Printf.sprintf
                       "recomputed %.3fns/%.1f/%.1fmW/%d gates/%d comps vs \
                        recorded %.3fns/%.1f/%.1fmW/%d gates/%d comps"
                       s.delay s.area s.power s.gates s.comps f.f_delay
                       f.f_area f.f_power f.f_gates f.f_comps)
            | None -> ()))
    rc.J.r_records;
  {
    rep_path = path;
    rep_records = List.length rc.J.r_records;
    rep_truncated_bytes = rc.J.r_truncated_bytes;
    rep_deltas = !deltas;
    rep_checks = !checks;
    rep_finished = J.finished rc;
    rep_divergences = List.rev !divergences;
  }

(* --- Human baseline --------------------------------------------------- *)

(* What a careful but unaided engineer enters at the technology level:
   the compiled design mapped macro for macro, no optimization.
   Conservative choices: ripple carry everywhere, standard power. *)
let human_baseline ?(technology = Ecl) design =
  let db = Database.create () in
  let lib = Milo_library.Generic.get () in
  let target = target_of technology in
  let expanded = Compile.expand_design db lib design in
  let flat = Database.flatten db expanded in
  let mapped = Table_map.map_design target flat in
  (mapped, db)

let baseline_stats ?(technology = Ecl) ?(input_arrivals = []) design =
  let target = target_of technology in
  let mapped, _ = human_baseline ~technology design in
  stats_of ~input_arrivals target mapped
