(* The time optimizer (Figure 8):

     timing analysis -> pick the critical path furthest from spec ->
     pick a control strategy by slack -> try strategies/rules; keep a
     transformation only if it reduces the worst endpoint arrival ->
     repeat until the constraint is met or all strategies are exhausted. *)

module D = Milo_netlist.Design
module R = Milo_rules.Rule
module Sta = Milo_timing.Sta

type step = {
  step_strategy : string;
  step_detail : string;
  delay_before : float;
  delay_after : float;
}

type outcome = { met : bool; final_delay : float; steps : step list }

(* With a measurer in the context, its live Sta view replaces a
   from-scratch analysis (the measurer is kept in lock-step with every
   committed edit, so the view is always current). *)
let analyze ctx ~input_arrivals =
  match !(ctx.R.measurer) with
  | Some m -> Milo_measure.Measure.sta m
  | None ->
      let env name = Milo_library.Technology.find ctx.R.tech name in
      Sta.analyze ~input_arrivals env ctx.R.design

(* The worst arrival among endpoints (what the constraint binds). *)
let worst ctx ~input_arrivals = Sta.worst_delay (analyze ctx ~input_arrivals)

let area ctx =
  match !(ctx.R.measurer) with
  | Some m -> (Milo_measure.Measure.current m).Milo_measure.Measure.area
  | None ->
      let env name = Milo_library.Technology.find ctx.R.tech name in
      Milo_estimate.Estimate.area env ctx.R.design

(* The measurer's running totals as a trace/provenance cost; [None]
   outside a measured window. *)
let cost_of ctx =
  match !(ctx.R.measurer) with
  | None -> None
  | Some m ->
      let c = Milo_measure.Measure.current m in
      Some
        {
          Milo_trace.Trace.delay = c.Milo_measure.Measure.delay;
          area = c.Milo_measure.Measure.area;
          power = c.Milo_measure.Measure.power;
        }

(* Try one strategy on the most critical path; keep the edit only if the
   worst delay strictly improves without a runaway area cost (the
   two-level collapse of an XOR-rich cone can explode, as the paper
   notes about the Logic Consultant's minimizer). *)
let try_strategy ?budget ctx ~input_arrivals ~cleanups (s : Strategies.strategy)
    =
  (match budget with Some b -> Milo_rules.Budget.eval b | None -> ());
  let sta = analyze ctx ~input_arrivals in
  match Milo_timing.Paths.most_critical sta with
  | None -> None
  | Some path -> (
      let before = Sta.worst_delay sta in
      let area_before = area ctx in
      let observed =
        Milo_trace.Trace.enabled () || Milo_provenance.Provenance.enabled ()
      in
      let before_cost = if observed then cost_of ctx else None in
      let log = D.new_log () in
      match s.Strategies.run ctx sta path log with
      | Strategies.Not_applicable ->
          D.undo ctx.R.design log;
          None
      | Strategies.Applied detail -> (
          Milo_rules.Engine.run_cleanups ctx cleanups log;
          match Milo_rules.Engine.measure_step ctx log with
          | Milo_rules.Engine.Measure_failed ->
              D.undo ctx.R.design log;
              None
          | step ->
              let after = worst ctx ~input_arrivals in
              let area_after = area ctx in
              let area_ok =
                area_after <= Float.max (area_before *. 1.25) (area_before +. 4.0)
              in
              let kept = after < before -. 1e-9 && area_ok in
              if Milo_trace.Trace.enabled () then
                Milo_trace.Trace.emit ?before:before_cost
                  ?after:(cost_of ctx)
                  (Milo_trace.Trace.Strategy_step
                     {
                       strategy = s.Strategies.strat_name;
                       detail;
                       kept;
                       delay_before = before;
                       delay_after = after;
                     });
              if kept then begin
                (* Keep the measurement before committing (mirroring
                   [Engine.greedy_step]): if keeping forces a resync,
                   the totals attached to the commit below are the
                   resynced — final — ones, so attribution telescopes. *)
                Milo_rules.Engine.measure_keep ctx step;
                if Milo_provenance.Provenance.enabled () then
                  Milo_provenance.Provenance.pending ~design:ctx.R.design
                    ~label:s.Strategies.strat_name ?before:before_cost
                    ?after:(cost_of ctx) ();
                D.commit ~label:s.Strategies.strat_name ~design:ctx.R.design
                  log;
                (match budget with
                | Some b -> Milo_rules.Budget.step b
                | None -> ());
                Some
                  {
                    step_strategy = s.Strategies.strat_name;
                    step_detail = detail;
                    delay_before = before;
                    delay_after = after;
                  }
              end
              else begin
                D.undo ctx.R.design log;
                Milo_rules.Engine.measure_drop ctx step;
                None
              end))

module Pool = Milo_parallel.Pool
module Exec = Milo_parallel.Exec

(* Quarantine key for a whole strategy: strategies are not rules, but
   a faulting strategy task is contained the same way — under a
   reserved name the rule tables cannot collide with. *)
let strategy_key name = "strategy:" ^ name

(* Parallel strategy fan-out for one optimizer iteration: every
   non-quarantined strategy in [order] is tried speculatively by one
   supervised task on a forked snapshot (a pure would-this-help
   oracle), then the first success in strategy order is re-run
   authoritatively on the real context — so trace, provenance, the
   measurer and the budget see exactly one strategy application, the
   same one a sequential scan of the oracle verdicts would pick.  A
   faulting task quarantines its strategy for the rest of the run. *)
let try_all_par ?budget ~exec ctx ~input_arrivals ~cleanups order =
  let strategies =
    List.filter_map
      (fun id ->
        let s = Strategies.by_id id in
        if Milo_rules.Engine.is_quarantined (strategy_key s.Strategies.strat_name)
        then None
        else Some s)
      order
  in
  if strategies = [] then None
  else begin
    (match budget with
    | Some b -> List.iter (fun _ -> Milo_rules.Budget.eval b) strategies
    | None -> ());
    let tasks =
      List.map
        (fun (s : Strategies.strategy) () ->
          Milo_rules.Engine.worker_task (fun () ->
              let wctx = R.fork_context ctx in
              try_strategy wctx ~input_arrivals ~cleanups s <> None))
        strategies
    in
    let outcomes = Exec.map exec tasks in
    let sarr = Array.of_list strategies in
    Array.iteri
      (fun i outcome ->
        match outcome with
        | Pool.Done (_, fails) -> Milo_rules.Engine.import_failures fails
        | Pool.Task_failed fault ->
            Milo_rules.Engine.note_failure_named
              ~reason:Milo_rules.Engine.Raised
              (strategy_key sarr.(i).Strategies.strat_name)
              ("parallel task: " ^ Pool.fault_message fault))
      outcomes;
    let rec pick i =
      if i >= Array.length sarr then None
      else
        match outcomes.(i) with
        | Pool.Done (true, _) -> (
            (* The oracle said this strategy improves; the
               authoritative run re-verifies on the real context.  A
               divergence (rare: the oracle measured from scratch, the
               context may measure incrementally) just falls through
               to the next candidate. *)
            match try_strategy ?budget ctx ~input_arrivals ~cleanups sarr.(i) with
            | Some step -> Some step
            | None -> pick (i + 1))
        | Pool.Done (false, _) | Pool.Task_failed _ -> pick (i + 1)
    in
    pick 0
  end

let optimize ?(exec = Exec.sequential) ?(required = 0.0) ?(input_arrivals = [])
    ?(max_steps = 64) ?budget ~cleanups ctx =
  Milo_trace.Trace.with_span "time-opt" @@ fun () ->
  let steps = ref [] in
  let exhausted () =
    match budget with Some b -> Milo_rules.Budget.exhausted b | None -> false
  in
  let rec loop n =
    let current = worst ctx ~input_arrivals in
    if current <= required || n >= max_steps || exhausted () then current
    else begin
      let deficit = current -. required in
      let order = Strategies.order_for ~deficit ~required:(Float.max required current) in
      let rec try_all = function
        | [] -> None
        | id :: rest -> (
            if exhausted () then None
            else
              match
                try_strategy ?budget ctx ~input_arrivals ~cleanups
                  (Strategies.by_id id)
              with
              | Some step -> Some step
              | None -> try_all rest)
      in
      let picked =
        match (exec : Exec.t) with
        | Exec.Sequential -> try_all order
        | Exec.Inline _ | Exec.Pooled _ ->
            try_all_par ?budget ~exec ctx ~input_arrivals ~cleanups order
      in
      match picked with
      | Some step ->
          steps := step :: !steps;
          loop (n + 1)
      | None -> current
    end
  in
  let final_delay = loop 0 in
  { met = final_delay <= required; final_delay; steps = List.rev !steps }

(* Unconstrained "make it as fast as possible": iterate until no
   strategy improves. *)
let minimize_delay ?exec ?(input_arrivals = []) ?(max_steps = 64) ?budget
    ~cleanups ctx =
  optimize ?exec ~required:0.0 ~input_arrivals ~max_steps ?budget ~cleanups ctx
