(* The logic optimizer (Section 6.4, Figure 18): hierarchical,
   technology-specific optimization.

   Each compiled sub-design is mapped and optimized at the lowest level
   of the hierarchy first; then the next level up is expanded in terms
   of the already-optimized lower designs and optimized itself, until
   the whole design is one flat, optimized, technology-specific netlist.
   "Since the logic compilers produce near-optimal designs, little
   optimization is required -- for the most part a cleanup of the
   technology mapper's design (such as inverter elimination, or merging
   of components)." *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types
module R = Milo_rules.Rule
module Database = Milo_compilers.Database
module Table_map = Milo_techmap.Table_map

type report_entry = {
  level_design : string;
  applications : int;
  area_before : float;
  area_after : float;
}

type report = {
  entries : report_entry list;
  timing : Time_opt.outcome option;
}

(* Sub-design names reachable from a design, deepest first. *)
let instance_order db design =
  let seen = Hashtbl.create 16 in
  let order = ref [] in
  let rec visit d =
    List.iter
      (fun (c : D.comp) ->
        match c.D.kind with
        | T.Instance name ->
            if not (Hashtbl.mem seen name) then begin
              Hashtbl.replace seen name ();
              visit (Database.get db name);
              order := name :: !order
            end
        | T.Gate _ | T.Multiplexor _ | T.Decoder _ | T.Comparator _
        | T.Logic_unit _ | T.Arith_unit _ | T.Register _ | T.Counter _
        | T.Constant _ | T.Macro _ ->
            ())
      (D.comps d)
  in
  visit design;
  List.rev !order

let make_ctx _db tech_db target design =
  R.make_context
    ~extra_resolve:(Database.resolver tech_db [ target.Table_map.tech ])
    target.Table_map.tech target.Table_map.set design

(* Greedy area/quality pass over one level of the hierarchy.  Uses a
   structural cost (area + gate count) so it applies to sub-designs with
   instances, where full STA is not yet meaningful. *)
let level_cost target tech_db ctx () =
  let area (c : D.comp) =
    match c.D.kind with
    | T.Macro m -> (Milo_library.Technology.find target.Table_map.tech m).Milo_library.Macro.area
    | T.Instance i ->
        (* Optimized sub-designs were measured when they were done. *)
        List.fold_left
          (fun acc (sc : D.comp) ->
            acc
            +.
            match sc.D.kind with
            | T.Macro m ->
                (Milo_library.Technology.find target.Table_map.tech m)
                  .Milo_library.Macro.area
            | T.Instance _ | T.Gate _ | T.Multiplexor _ | T.Decoder _
            | T.Comparator _ | T.Logic_unit _ | T.Arith_unit _ | T.Register _
            | T.Counter _ | T.Constant _ ->
                0.0)
          0.0
          (D.comps (Database.get tech_db i))
    | T.Gate _ | T.Multiplexor _ | T.Decoder _ | T.Comparator _
    | T.Logic_unit _ | T.Arith_unit _ | T.Register _ | T.Counter _
    | T.Constant _ ->
        0.0
  in
  List.fold_left (fun acc c -> acc +. area c) 0.0 (D.comps ctx.R.design)

let optimize_level ?budget db tech_db target design =
  Milo_trace.Trace.with_span ("level:" ^ D.name design) @@ fun () ->
  let ctx = make_ctx db tech_db target design in
  let cost = level_cost target tech_db ctx in
  let before = cost () in
  (* Per-level passes use only the logic critic's always-good rules
     ("for the most part a cleanup of the technology mapper's design");
     timing-sensitive area recovery happens on the flat design where the
     constraint can be enforced. *)
  let apps =
    Milo_rules.Engine.greedy_pass ?budget ctx ~cost
      ~cleanups:Milo_critic.Critic.cleanup Milo_critic.Critic.logic
  in
  {
    level_design = D.name design;
    applications = List.length apps;
    area_before = before;
    area_after = cost ();
  }

(* 3. Electric correctness, then timing against the constraint, then
   area recovery off the critical paths — everything that happens on the
   flat technology-mapped design.  Split out so a journal resume can
   re-enter here with a restored Techmap snapshot. *)
let flat_passes ?(exec = Milo_parallel.Exec.sequential) ~required
    ~input_arrivals ~incremental ?budget db tech_db target d =
  let ctx = make_ctx db tech_db target d in
  let electric () =
    Milo_trace.Trace.with_span "electric" (fun () ->
        let log = D.new_log () in
        Milo_rules.Engine.run_cleanups ctx Milo_critic.Critic.electric log;
        D.commit ~label:"electric" ~design:d log)
  in
  electric ();
  (* One incremental measurer for the whole flat optimization stage:
     the timing and area passes below share it through the context, so
     candidate evaluation costs a cone re-propagation instead of a
     full-design STA + estimate fold. *)
  if incremental then
    ctx.R.measurer :=
      Some (Milo_measure.Measure.create ~input_arrivals target.Table_map.tech d);
  let timing =
    if required < infinity then
      Some
        (Time_opt.optimize ~exec ~required ~input_arrivals ?budget
           ~cleanups:Milo_critic.Critic.cleanup ctx)
    else None
  in
  let _ =
    Area_opt.optimize ~exec ~required ~input_arrivals ?budget
      ~rules:(Milo_critic.Critic.area @ Milo_critic.Critic.logic @ Milo_critic.Critic.power)
      ~cleanups:Milo_critic.Critic.cleanup ctx
  in
  ctx.R.measurer := None;
  electric ();
  timing

(* Optimize a hierarchical generic design bottom-up, producing one flat
   technology-specific design (Figure 18's process), then run the time
   optimizer against the constraint and recover area off the critical
   paths. *)
let optimize ?exec ?(required = infinity) ?(input_arrivals = [])
    ?(incremental = true) ?on_mapped ?budget db target design =
  let tech_db = Database.create () in
  let entries = ref [] in
  (* 1. Map and optimize every sub-design, deepest first. *)
  List.iter
    (fun name ->
      let sub = Database.get db name in
      let mapped = Table_map.map_design ~keep_instances:true target sub in
      let entry = optimize_level ?budget db tech_db target mapped in
      entries := entry :: !entries;
      Database.register tech_db mapped)
    (instance_order db design);
  (* 2. Map the top level, expand one level at a time, optimizing after
     each expansion. *)
  let top = ref (Table_map.map_design ~keep_instances:true target design) in
  let has_instances d =
    List.exists
      (fun (c : D.comp) ->
        match c.D.kind with
        | T.Instance _ -> true
        | T.Gate _ | T.Multiplexor _ | T.Decoder _ | T.Comparator _
        | T.Logic_unit _ | T.Arith_unit _ | T.Register _ | T.Counter _
        | T.Constant _ | T.Macro _ ->
            false)
      (D.comps d)
  in
  entries := optimize_level ?budget db tech_db target !top :: !entries;
  while has_instances !top do
    top := Database.flatten_once tech_db !top;
    entries := optimize_level ?budget db tech_db target !top :: !entries
  done;
  (* The design is now flat and fully technology-mapped; let the caller
     inspect it (the flow lints here) before timing/area optimization. *)
  (match on_mapped with Some f -> f !top (List.rev !entries) | None -> ());
  let timing =
    flat_passes ?exec ~required ~input_arrivals ~incremental ?budget db
      tech_db target !top
  in
  (!top, { entries = List.rev !entries; timing })

(* Re-enter the optimizer at the flat, technology-mapped design (step 3
   only) — the journal-resume entry point: a restored Techmap snapshot
   has no [Instance] kinds left, so an empty technology database
   resolves every kind it can contain. *)
let optimize_flat ?exec ?(required = infinity) ?(input_arrivals = [])
    ?(incremental = true) ?budget target d =
  let tech_db = Database.create () in
  let timing =
    flat_passes ?exec ~required ~input_arrivals ~incremental ?budget tech_db
      tech_db target d
  in
  (d, { entries = []; timing })
