(** The time optimizer of Figure 8: strategy selection by slack over the
    most critical path, keeping only transformations that reduce the
    worst endpoint arrival. *)

module R = Milo_rules.Rule

type step = {
  step_strategy : string;
  step_detail : string;
  delay_before : float;
  delay_after : float;
}

type outcome = { met : bool; final_delay : float; steps : step list }

val analyze :
  R.context -> input_arrivals:(string * float) list -> Milo_timing.Sta.t

val worst : R.context -> input_arrivals:(string * float) list -> float

val try_strategy :
  ?budget:Milo_rules.Budget.t ->
  R.context ->
  input_arrivals:(string * float) list ->
  cleanups:R.t list ->
  Strategies.strategy ->
  step option

val optimize :
  ?exec:Milo_parallel.Exec.t ->
  ?required:float ->
  ?input_arrivals:(string * float) list ->
  ?max_steps:int ->
  ?budget:Milo_rules.Budget.t ->
  cleanups:R.t list ->
  R.context ->
  outcome
(** Stops at the constraint, [max_steps], strategy exhaustion, or
    budget exhaustion — in the last case the outcome reports the
    best-so-far delay.

    With a parallel [exec] plan, each iteration tries every eligible
    strategy speculatively as a supervised task on a forked snapshot
    and re-applies the first success (in strategy order)
    authoritatively; a faulting strategy task is quarantined under
    ["strategy:NAME"] for the rest of the run.  [Sequential] (the
    default) is the legacy path byte-for-byte. *)

val minimize_delay :
  ?exec:Milo_parallel.Exec.t ->
  ?input_arrivals:(string * float) list ->
  ?max_steps:int ->
  ?budget:Milo_rules.Budget.t ->
  cleanups:R.t list ->
  R.context ->
  outcome
