(** The time optimizer of Figure 8: strategy selection by slack over the
    most critical path, keeping only transformations that reduce the
    worst endpoint arrival. *)

module R = Milo_rules.Rule

type step = {
  step_strategy : string;
  step_detail : string;
  delay_before : float;
  delay_after : float;
}

type outcome = { met : bool; final_delay : float; steps : step list }

val analyze :
  R.context -> input_arrivals:(string * float) list -> Milo_timing.Sta.t

val worst : R.context -> input_arrivals:(string * float) list -> float

val try_strategy :
  ?budget:Milo_rules.Budget.t ->
  R.context ->
  input_arrivals:(string * float) list ->
  cleanups:R.t list ->
  Strategies.strategy ->
  step option

val optimize :
  ?required:float ->
  ?input_arrivals:(string * float) list ->
  ?max_steps:int ->
  ?budget:Milo_rules.Budget.t ->
  cleanups:R.t list ->
  R.context ->
  outcome
(** Stops at the constraint, [max_steps], strategy exhaustion, or
    budget exhaustion — in the last case the outcome reports the
    best-so-far delay. *)

val minimize_delay :
  ?input_arrivals:(string * float) list ->
  ?max_steps:int ->
  ?budget:Milo_rules.Budget.t ->
  cleanups:R.t list ->
  R.context ->
  outcome
