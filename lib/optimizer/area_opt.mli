(** The area optimizer: gain-measured greedy (or lookahead) application
    of area rules under a timing-constraint penalty. *)

module R = Milo_rules.Rule

val cost_fn :
  ?required:float ->
  ?input_arrivals:(string * float) list ->
  R.context ->
  unit ->
  float

val optimize :
  ?required:float ->
  ?input_arrivals:(string * float) list ->
  ?max_steps:int ->
  ?budget:Milo_rules.Budget.t ->
  rules:R.t list ->
  cleanups:R.t list ->
  R.context ->
  Milo_rules.Engine.application list

val optimize_lookahead :
  ?required:float ->
  ?input_arrivals:(string * float) list ->
  ?params:Milo_rules.Search.params ->
  ?stats:Milo_rules.Search.stats ->
  ?budget:Milo_rules.Budget.t ->
  rules:R.t list ->
  cleanups:R.t list ->
  R.context ->
  float
