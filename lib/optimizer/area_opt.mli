(** The area optimizer: gain-measured greedy (or lookahead) application
    of area rules under a timing-constraint penalty. *)

module R = Milo_rules.Rule

val cost_fn :
  ?required:float ->
  ?input_arrivals:(string * float) list ->
  R.context ->
  unit ->
  float

val optimize :
  ?exec:Milo_parallel.Exec.t ->
  ?required:float ->
  ?input_arrivals:(string * float) list ->
  ?max_steps:int ->
  ?budget:Milo_rules.Budget.t ->
  rules:R.t list ->
  cleanups:R.t list ->
  R.context ->
  Milo_rules.Engine.application list
(** With a parallel [exec] plan, candidate evaluation fans out per rule
    onto supervised tasks ({!Milo_rules.Engine.greedy_pass_par});
    [Sequential] (the default) is the legacy path byte-for-byte. *)

val optimize_lookahead :
  ?exec:Milo_parallel.Exec.t ->
  ?required:float ->
  ?input_arrivals:(string * float) list ->
  ?params:Milo_rules.Search.params ->
  ?stats:Milo_rules.Search.stats ->
  ?budget:Milo_rules.Budget.t ->
  rules:R.t list ->
  cleanups:R.t list ->
  R.context ->
  float
