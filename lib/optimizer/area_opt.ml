(* The area optimizer: greedy gain-measured application of the logic and
   area critics' rules, with the timing constraint enforced as a penalty
   so area recovery avoids critical paths (Section 3's "area
   optimizations ... avoid critical or near-critical paths"). *)

module R = Milo_rules.Rule
module Engine = Milo_rules.Engine

let cost_fn ?(required = infinity) ?(input_arrivals = []) ctx () =
  (* With a measurer in the context the totals are already current —
     O(1) instead of a full STA + estimate fold per evaluation. *)
  let m =
    match !(ctx.R.measurer) with
    | Some ms -> Milo_measure.Measure.current ms
    | None -> Engine.measure_fn ctx ~input_arrivals ()
  in
  let penalty =
    if m.Engine.delay > required then 1000.0 *. (m.Engine.delay -. required)
    else 0.0
  in
  m.Engine.area +. (0.05 *. m.Engine.power) +. penalty

let optimize ?(required = infinity) ?(input_arrivals = []) ?(max_steps = 200)
    ?budget ~rules ~cleanups ctx =
  Milo_trace.Trace.with_span "area-opt" @@ fun () ->
  let cost = cost_fn ~required ~input_arrivals ctx in
  Engine.greedy_pass ~max_steps ?budget ctx ~cost ~cleanups rules

(* Area recovery with lookahead (used by the metarules experiment). *)
let optimize_lookahead ?(required = infinity) ?(input_arrivals = [])
    ?(params = Milo_rules.Search.default_params) ?stats ?budget ~rules
    ~cleanups ctx =
  let cost = cost_fn ~required ~input_arrivals ctx in
  Milo_rules.Search.run ~params ?stats ?budget ctx ~cost ~cleanups rules
