(* The area optimizer: greedy gain-measured application of the logic and
   area critics' rules, with the timing constraint enforced as a penalty
   so area recovery avoids critical paths (Section 3's "area
   optimizations ... avoid critical or near-critical paths"). *)

module R = Milo_rules.Rule
module Engine = Milo_rules.Engine

let cost_fn ?(required = infinity) ?(input_arrivals = []) ctx () =
  (* With a measurer in the context the totals are already current —
     O(1) instead of a full STA + estimate fold per evaluation. *)
  let m =
    match !(ctx.R.measurer) with
    | Some ms -> Milo_measure.Measure.current ms
    | None -> Engine.measure_fn ctx ~input_arrivals ()
  in
  let penalty =
    if m.Engine.delay > required then 1000.0 *. (m.Engine.delay -. required)
    else 0.0
  in
  m.Engine.area +. (0.05 *. m.Engine.power) +. penalty

let optimize ?(exec = Milo_parallel.Exec.sequential) ?(required = infinity)
    ?(input_arrivals = []) ?(max_steps = 200) ?budget ~rules ~cleanups ctx =
  Milo_trace.Trace.with_span "area-opt" @@ fun () ->
  let cost = cost_fn ~required ~input_arrivals ctx in
  (* Worker forks carry no measurer, so the factory's cost function
     recomputes from scratch on the fork — the same objective, just
     not incremental. *)
  let cost_factory wctx = cost_fn ~required ~input_arrivals wctx in
  Engine.greedy_pass_par ~max_steps ?budget ~exec ~cost_factory ctx ~cost
    ~cleanups rules

(* Area recovery with lookahead (used by the metarules experiment). *)
let optimize_lookahead ?(exec = Milo_parallel.Exec.sequential)
    ?(required = infinity) ?(input_arrivals = [])
    ?(params = Milo_rules.Search.default_params) ?stats ?budget ~rules
    ~cleanups ctx =
  let cost = cost_fn ~required ~input_arrivals ctx in
  let cost_factory wctx = cost_fn ~required ~input_arrivals wctx in
  Milo_rules.Search.run_par ~params ?stats ?budget ~exec ~cost_factory ctx
    ~cost ~cleanups rules
