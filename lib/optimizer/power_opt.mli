(** The power optimizer: power-weighted greedy rule application under
    the timing constraint. *)

module R = Milo_rules.Rule

val cost_fn :
  ?required:float ->
  ?input_arrivals:(string * float) list ->
  R.context ->
  unit ->
  float

val optimize :
  ?exec:Milo_parallel.Exec.t ->
  ?required:float ->
  ?input_arrivals:(string * float) list ->
  ?max_steps:int ->
  ?budget:Milo_rules.Budget.t ->
  rules:R.t list ->
  cleanups:R.t list ->
  R.context ->
  Milo_rules.Engine.application list
(** With a parallel [exec] plan, candidate evaluation fans out per rule
    onto supervised tasks; [Sequential] (the default) is the legacy
    path byte-for-byte. *)
