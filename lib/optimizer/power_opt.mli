(** The power optimizer: power-weighted greedy rule application under
    the timing constraint. *)

module R = Milo_rules.Rule

val cost_fn :
  ?required:float ->
  ?input_arrivals:(string * float) list ->
  R.context ->
  unit ->
  float

val optimize :
  ?required:float ->
  ?input_arrivals:(string * float) list ->
  ?max_steps:int ->
  ?budget:Milo_rules.Budget.t ->
  rules:R.t list ->
  cleanups:R.t list ->
  R.context ->
  Milo_rules.Engine.application list
