(** The hierarchical logic optimizer of Figure 18: map and optimize each
    compiled sub-design bottom-up, expand level by level, then meet
    timing and recover area on the flat technology design. *)

module D = Milo_netlist.Design

type report_entry = {
  level_design : string;
  applications : int;
  area_before : float;
  area_after : float;
}

type report = {
  entries : report_entry list;
  timing : Time_opt.outcome option;
}

val instance_order : Milo_compilers.Database.t -> D.t -> string list
(** Sub-design names reachable from a design, deepest first. *)

val optimize :
  ?exec:Milo_parallel.Exec.t ->
  ?required:float ->
  ?input_arrivals:(string * float) list ->
  ?incremental:bool ->
  ?on_mapped:(D.t -> report_entry list -> unit) ->
  ?budget:Milo_rules.Budget.t ->
  Milo_compilers.Database.t ->
  Milo_techmap.Table_map.target ->
  D.t ->
  D.t * report
(** [optimize db target design] takes a hierarchical generic design
    (from [Compile.expand_design]) and returns the flat, optimized,
    technology-specific design with a per-level report.  [on_mapped] is
    called on the flat technology-mapped design — together with the
    per-level report entries accumulated so far, which the flow's
    journal records at the techmap checkpoint — before the timing/area
    optimization phase (the flow's post-techmap lint hook).  [budget]
    bounds every optimization pass (per-level greedy, timing strategies,
    area recovery); mapping and flattening always complete, so an
    exhausted budget degrades to the mapped-but-unoptimized design.
    [incremental] (default [true]) installs one [Milo_measure.Measure]
    per flat optimization stage in the rule context, so the timing and
    area passes evaluate candidates by delta-STA and streaming totals
    instead of full recomputes; pass [false] to force the full
    measurement path.

    [exec] is the parallel execution plan threaded into the flat
    timing/area passes (strategy fan-out, per-rule candidate fan-out);
    [Sequential] — the default — is the legacy path byte-for-byte.
    Per-level greedy passes stay sequential: they are cheap cleanups
    dominated by mapping time. *)

val optimize_flat :
  ?exec:Milo_parallel.Exec.t ->
  ?required:float ->
  ?input_arrivals:(string * float) list ->
  ?incremental:bool ->
  ?budget:Milo_rules.Budget.t ->
  Milo_techmap.Table_map.target ->
  D.t ->
  D.t * report
(** Re-enter the optimizer at step 3 with an already flat,
    technology-mapped design (a restored Techmap checkpoint): electric
    cleanups, timing against the constraint, area recovery, electric
    again.  The journal-resume entry point.  The report's [entries] are
    empty — per-level history belongs to the interrupted run and is
    restored from its checkpoint record. *)
