(* The power optimizer: power-weighted greedy application of the power
   critic's rules under the timing constraint. *)

module R = Milo_rules.Rule
module Engine = Milo_rules.Engine

let cost_fn ?(required = infinity) ?(input_arrivals = []) ctx () =
  (* Measurer-aware, like [Area_opt.cost_fn]. *)
  let m =
    match !(ctx.R.measurer) with
    | Some ms -> Milo_measure.Measure.current ms
    | None -> Engine.measure_fn ctx ~input_arrivals ()
  in
  let penalty =
    if m.Engine.delay > required then 1000.0 *. (m.Engine.delay -. required)
    else 0.0
  in
  m.Engine.power +. (0.05 *. m.Engine.area) +. penalty

let optimize ?(exec = Milo_parallel.Exec.sequential) ?(required = infinity)
    ?(input_arrivals = []) ?(max_steps = 200) ?budget ~rules ~cleanups ctx =
  Milo_trace.Trace.with_span "power-opt" @@ fun () ->
  let cost = cost_fn ~required ~input_arrivals ctx in
  let cost_factory wctx = cost_fn ~required ~input_arrivals wctx in
  Engine.greedy_pass_par ~max_steps ?budget ~exec ~cost_factory ctx ~cost
    ~cleanups rules
