(** Semantic guard: simulation-based equivalence checking threaded
    through the flow as a safety net.

    The guard verifies that transformations preserve function — at
    stage granularity ([check] comparing a stage's output against the
    previous checkpoint) and, through the engine's rule guard, at the
    granularity of single rule applications.  A detected divergence is
    shrunk to a minimal failing vector (delta debugging) and localized
    to the fan-in cone of the first diverging output port. *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types

(** {1 Tier policy} *)

(** How much checking to do.  [Off] costs nothing; [Sampled] checks a
    subset of rule applications and uses cheaper stage parameters;
    [Full] checks everything with the strongest parameters. *)
type policy = Off | Sampled | Full

val policy_name : policy -> string
val policy_of_string : string -> policy option

type params = {
  max_exhaustive : int;  (** exhaustive sweep up to this many inputs *)
  vectors : int;  (** random vectors past the exhaustive bound *)
  cycles : int;  (** lock-step cycles per sequential run *)
  runs : int;  (** independent sequential runs *)
  seed : int;
}

val full_params : params
(** Strong checking: exhaustive ≤ 12 inputs, 512 vectors, 256×8
    sequential cycles — [Equiv]'s defaults. *)

val sampled_params : params
(** Cheap checking for the sampled tier: exhaustive ≤ 8 inputs, 64
    vectors, 48×2 sequential cycles. *)

(** {1 Divergences} *)

type divergence = {
  div_ports : string list;
      (** every output port that diverges under the failing vector *)
  div_inputs : (string * bool) list;  (** failing vector, shrunk *)
  div_cycle : int option;  (** cycle number for sequential mismatches *)
  div_cone_inputs : string list;
      (** input ports in the fan-in cone of the first diverging port *)
  div_cone_comps : int;  (** components in that cone *)
}

exception Miscompile of { guard_stage : string; divergence : divergence }
(** Raised by the flow's stage guards when a stage output is not
    equivalent to the previous checkpoint.  A printer is registered. *)

val describe : divergence -> string
(** One-line rendering: ports, vector, cycle, cone. *)

val shrink_vector :
  fails:((string * bool) list -> bool) -> (string * bool) list ->
  (string * bool) list
(** Delta-debugging minimizer: greedily clear [true] inputs while
    [fails] keeps reporting the mismatch; fixpoint.  The result fails
    and has a minimal (locally) set of asserted inputs. *)

val localize :
  resolve:D.resolver -> is_seq:(T.kind -> bool) -> D.t -> string ->
  string list * int
(** [localize ~resolve ~is_seq design port] walks the structural fan-in
    of output port [port], stopping at input ports and sequential
    components: returns the input ports reached and the number of
    combinational components traversed — the minimal output cone a
    divergence report points at. *)

val check :
  ?params:params ->
  is_seq:(T.kind -> bool) ->
  Milo_sim.Simulator.env -> D.t ->
  Milo_sim.Simulator.env -> D.t ->
  divergence option
(** Compare two designs on their shared port interface (reference
    first, candidate second): exhaustive/random combinational check, or
    lock-step sequential when either side holds state per [is_seq].
    [Some d] is a counterexample already shrunk and localized (against
    the candidate design). *)

(** {1 Statistics} *)

type stats = {
  mutable stage_checks : int;
  mutable stage_mismatches : int;
  mutable rule_checks : int;  (** cone-local rule checks performed *)
  mutable rule_mismatches : int;  (** miscompiles caught and reverted *)
  mutable rule_skipped : int;  (** sampled out, unverifiable, or over budget *)
  mutable rule_certified : int;
      (** applications exempted because the rule holds a static
          Certified certificate (see [Milo_absint.Certify]) *)
}

val fresh_stats : unit -> stats
val stats_active : stats -> bool
(** True when any counter is nonzero (i.e. the guard did anything). *)

val pp_stats : Format.formatter -> stats -> unit
