(* Semantic guard: equivalence checking as a flow-level safety net.

   The primitive is [Milo_sim.Equiv]; this module packages it as a
   tiered policy (off / sampled / full), turns a raw mismatch into a
   usable diagnosis (delta-debugged vector, output-cone localization)
   and carries the counters the flow and engine report. *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types
module Simulator = Milo_sim.Simulator
module Equiv = Milo_sim.Equiv

(* --- Tier policy ------------------------------------------------------- *)

type policy = Off | Sampled | Full

let policy_name = function Off -> "off" | Sampled -> "sampled" | Full -> "full"

let policy_of_string = function
  | "off" -> Some Off
  | "sampled" -> Some Sampled
  | "full" -> Some Full
  | _ -> None

type params = {
  max_exhaustive : int;
  vectors : int;
  cycles : int;
  runs : int;
  seed : int;
}

let full_params =
  { max_exhaustive = 12; vectors = 512; cycles = 256; runs = 8; seed = 0x5eed }

let sampled_params =
  { max_exhaustive = 8; vectors = 64; cycles = 48; runs = 2; seed = 0x5eed }

(* --- Divergences ------------------------------------------------------- *)

type divergence = {
  div_ports : string list;
  div_inputs : (string * bool) list;
  div_cycle : int option;
  div_cone_inputs : string list;
  div_cone_comps : int;
}

exception Miscompile of { guard_stage : string; divergence : divergence }

let describe d =
  let vec =
    String.concat " "
      (List.filter_map
         (fun (p, v) -> if v then Some p else None)
         d.div_inputs)
  in
  let vec = if vec = "" then "all-zero" else vec ^ "=1, rest 0" in
  let cyc =
    match d.div_cycle with
    | None -> ""
    | Some c -> Printf.sprintf " at cycle %d" c
  in
  Printf.sprintf "output %s diverges%s under {%s}; cone: %d comps from {%s}"
    (String.concat ", " d.div_ports)
    cyc vec d.div_cone_comps
    (String.concat ", " d.div_cone_inputs)

let () =
  Printexc.register_printer (function
    | Miscompile { guard_stage; divergence } ->
        Some
          (Printf.sprintf "Miscompile at stage %s: %s" guard_stage
             (describe divergence))
    | _ -> None)

(* --- Counterexample shrinking ------------------------------------------ *)

(* Delta debugging over the input vector: greedily clear asserted
   inputs while the mismatch persists, to a fixpoint.  Monotone in the
   number of [true] bits, so it terminates in O(n^2) probes. *)
let shrink_vector ~fails vector =
  let clear v p =
    List.map (fun (q, b) -> if q = p then (q, false) else (q, b)) v
  in
  let rec pass v =
    let v', changed =
      List.fold_left
        (fun (v, changed) (p, _) ->
          match List.assoc_opt p v with
          | Some true ->
              let cand = clear v p in
              if fails cand then (cand, true) else (v, changed)
          | Some false | None -> (v, changed))
        (v, false) v
    in
    if changed then pass v' else v'
  in
  if fails vector then pass vector else vector

(* --- Cone localization ------------------------------------------------- *)

(* Backward structural traversal from an output port: through
   combinational components, stopping at input ports and sequential
   elements (whose outputs are state, not a function of the current
   inputs).  The result names the primary inputs that can influence the
   diverging port and how much logic sits between. *)
let localize ~resolve ~is_seq design port =
  let seen_nets = Hashtbl.create 32 in
  let seen_comps = Hashtbl.create 32 in
  let inputs = ref [] in
  let comps = ref 0 in
  let rec net nid =
    if not (Hashtbl.mem seen_nets nid) then begin
      Hashtbl.replace seen_nets nid ();
      (match D.net_opt design nid with
      | Some { D.nport = Some (p, T.Input); _ } ->
          if not (List.mem p !inputs) then inputs := p :: !inputs
      | Some _ | None -> ());
      match D.driver ~resolve design nid with
      | D.Src_port _ | D.Src_none -> ()
      | D.Src_comp (cid, _) -> comp cid
    end
  and comp cid =
    if not (Hashtbl.mem seen_comps cid) then begin
      Hashtbl.replace seen_comps cid ();
      match D.comp_opt design cid with
      | None -> ()
      | Some c ->
          if not (is_seq c.D.kind) then begin
            incr comps;
            Hashtbl.iter
              (fun pin nid ->
                match D.pin_dir ~resolve design cid pin with
                | T.Input -> net nid
                | T.Output -> ()
                | exception _ -> ())
              c.D.conns
          end
    end
  in
  (match D.port_net design port with
  | nid -> net nid
  | exception Not_found -> ());
  (List.sort compare !inputs, !comps)

(* --- The check --------------------------------------------------------- *)

let has_state is_seq d =
  List.exists (fun (c : D.comp) -> is_seq c.D.kind) (D.comps d)

(* Ports whose values differ; a port present on either side only is a
   mismatch (the fold must cover both assignments, not just [o1]'s
   ports — a candidate that dropped an output would otherwise compare
   clean from the reference's perspective). *)
let mismatching_ports o1 o2 =
  let ports = List.sort_uniq compare (List.map fst o1 @ List.map fst o2) in
  List.filter
    (fun p ->
      match (List.assoc_opt p o1, List.assoc_opt p o2) with
      | Some v1, Some v2 -> v1 <> v2
      | Some _, None | None, Some _ -> true
      | None, None -> false)
    ports

let check ?(params = full_params) ~is_seq env_ref ref_d env_cand cand_d =
  let seq = has_state is_seq ref_d || has_state is_seq cand_d in
  let result =
    if seq then
      Equiv.sequential ~cycles:params.cycles ~runs:params.runs
        ~seed:params.seed env_ref ref_d env_cand cand_d
    else
      Equiv.combinational ~max_exhaustive:params.max_exhaustive
        ~vectors:params.vectors ~seed:params.seed env_ref ref_d env_cand
        cand_d
  in
  match result with
  | Equiv.Equivalent -> None
  | Equiv.Mismatch { inputs; ports; cycle } ->
      (* Shrink combinational counterexamples by re-simulation; a
         sequential vector is state-dependent mid-run, so it is
         reported as captured. *)
      let inputs =
        if seq then inputs
        else
          let s1 = Simulator.create env_ref ref_d
          and s2 = Simulator.create env_cand cand_d in
          let fails v =
            mismatching_ports (Simulator.outputs s1 v) (Simulator.outputs s2 v)
            <> []
          in
          shrink_vector ~fails inputs
      in
      let cone_inputs, cone_comps =
        match ports with
        | [] -> ([], 0)
        | p :: _ -> localize ~resolve:(Simulator.resolver_of_env env_cand)
                      ~is_seq cand_d p
      in
      Some
        {
          div_ports = ports;
          div_inputs = inputs;
          div_cycle = cycle;
          div_cone_inputs = cone_inputs;
          div_cone_comps = cone_comps;
        }

(* --- Statistics -------------------------------------------------------- *)

type stats = {
  mutable stage_checks : int;
  mutable stage_mismatches : int;
  mutable rule_checks : int;
  mutable rule_mismatches : int;
  mutable rule_skipped : int;
  mutable rule_certified : int;
}

let fresh_stats () =
  {
    stage_checks = 0;
    stage_mismatches = 0;
    rule_checks = 0;
    rule_mismatches = 0;
    rule_skipped = 0;
    rule_certified = 0;
  }

let stats_active s =
  s.stage_checks > 0 || s.stage_mismatches > 0 || s.rule_checks > 0
  || s.rule_mismatches > 0 || s.rule_skipped > 0 || s.rule_certified > 0

let pp_stats ppf s =
  Format.fprintf ppf
    "stage checks %d (%d mismatches), rule checks %d (%d miscompiles, %d \
     skipped, %d certified)"
    s.stage_checks s.stage_mismatches s.rule_checks s.rule_mismatches
    s.rule_skipped s.rule_certified
