(** Area/power accounting for mapped designs, and the formula-based
    microarchitecture estimator of Section 5 ("first method": estimate
    design statistics from component parameters without compiling). *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types

type env = string -> Milo_library.Macro.t

val kind_area : env -> T.kind -> float
val kind_power : env -> T.kind -> float
(** Cost of one component kind ([Macro]: library value, [Constant]: 0;
    anything unmapped raises [Invalid_argument]).  Used by the
    streaming accumulators in [Milo_measure], which price change-log
    entries without a component at hand. *)

val comp_area : env -> D.comp -> float
val comp_power : env -> D.comp -> float
val area : env -> D.t -> float
(** Total area in cells of a technology-mapped design. *)

val power : env -> D.t -> float
(** Total power in mW of a technology-mapped design. *)

type coefficients = {
  cells_per_gate : float;
  ns_per_level : float;
  mw_per_gate : float;
}

val ecl_coefficients : coefficients
val cmos_coefficients : coefficients
val generic_coefficients : coefficients

type micro_estimate = { est_area : float; est_delay : float; est_power : float }

val kind_levels : T.kind -> float
(** Logic levels a component adds on its worst path. *)

val micro : ?coefficients:coefficients -> T.kind -> micro_estimate
val micro_design : ?coefficients:coefficients -> D.t -> micro_estimate
