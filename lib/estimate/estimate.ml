(* Area and power accounting for mapped designs, plus the
   microarchitecture-level formula estimator (the "first method" of
   Section 5: a technology-specific formula that, given component
   parameters, produces a reasonable estimate without compiling). *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types
module M = Milo_library.Macro

type env = string -> M.t

let kind_area env (k : T.kind) =
  match k with
  | T.Macro m -> (env m).M.area
  | T.Constant _ -> 0.0
  | T.Gate _ | T.Multiplexor _ | T.Decoder _ | T.Comparator _ | T.Logic_unit _
  | T.Arith_unit _ | T.Register _ | T.Counter _ | T.Instance _ ->
      invalid_arg
        (Printf.sprintf "Estimate: %s is not technology-mapped" (T.kind_name k))

let kind_power env (k : T.kind) =
  match k with
  | T.Macro m -> (env m).M.power
  | T.Constant _ -> 0.0
  | T.Gate _ | T.Multiplexor _ | T.Decoder _ | T.Comparator _ | T.Logic_unit _
  | T.Arith_unit _ | T.Register _ | T.Counter _ | T.Instance _ ->
      invalid_arg
        (Printf.sprintf "Estimate: %s is not technology-mapped" (T.kind_name k))

let comp_area env (c : D.comp) =
  match c.D.kind with
  | T.Macro _ | T.Constant _ -> kind_area env c.D.kind
  | T.Gate _ | T.Multiplexor _ | T.Decoder _ | T.Comparator _ | T.Logic_unit _
  | T.Arith_unit _ | T.Register _ | T.Counter _ | T.Instance _ ->
      invalid_arg
        (Printf.sprintf "Estimate: %s is not technology-mapped" c.D.cname)

let comp_power env (c : D.comp) =
  match c.D.kind with
  | T.Macro _ | T.Constant _ -> kind_power env c.D.kind
  | T.Gate _ | T.Multiplexor _ | T.Decoder _ | T.Comparator _ | T.Logic_unit _
  | T.Arith_unit _ | T.Register _ | T.Counter _ | T.Instance _ ->
      invalid_arg
        (Printf.sprintf "Estimate: %s is not technology-mapped" c.D.cname)

let area env design =
  List.fold_left (fun acc c -> acc +. comp_area env c) 0.0 (D.comps design)

let power env design =
  List.fold_left (fun acc c -> acc +. comp_power env c) 0.0 (D.comps design)

(* --- Microarchitecture formula estimator ---------------------------- *)

(* Technology scaling coefficients: cells per 2-input-equivalent gate,
   ns per logic level, mW per gate. *)
type coefficients = {
  cells_per_gate : float;
  ns_per_level : float;
  mw_per_gate : float;
}

let ecl_coefficients = { cells_per_gate = 0.62; ns_per_level = 0.62; mw_per_gate = 0.58 }
let cmos_coefficients = { cells_per_gate = 0.68; ns_per_level = 0.55; mw_per_gate = 0.38 }
let generic_coefficients = { cells_per_gate = 0.75; ns_per_level = 0.75; mw_per_gate = 0.50 }

type micro_estimate = { est_area : float; est_delay : float; est_power : float }

(* Logic levels a component adds on its worst path. *)
let kind_levels (k : T.kind) =
  let open T in
  match k with
  | Gate (fn, n) -> (
      let n = gate_arity fn n in
      match fn with
      | Inv | Buf -> 1.0
      | Xor | Xnor -> 2.0 +. Float.of_int (clog2 (max 2 n) - 1)
      | And | Or | Nand | Nor -> 1.0 +. (0.5 *. Float.of_int (clog2 (max 2 n) - 1)))
  | Constant _ -> 0.0
  | Multiplexor { inputs; _ } -> 2.0 +. (0.5 *. Float.of_int (clog2 inputs))
  | Decoder { bits; _ } -> 1.0 +. (0.5 *. Float.of_int bits)
  | Comparator { bits; _ } -> 2.0 +. Float.of_int (clog2 (max 2 bits))
  | Logic_unit { inputs; _ } -> 1.0 +. (0.5 *. Float.of_int (clog2 (max 2 inputs)))
  | Arith_unit { bits; mode; _ } -> (
      match mode with
      | Ripple -> 2.0 *. Float.of_int bits
      | Lookahead -> 3.0 +. Float.of_int (clog2 (max 2 bits)))
  | Register _ -> 2.0
  | Counter { bits; _ } -> 2.0 +. (0.3 *. Float.of_int bits)
  | Macro _ | Instance _ -> 1.0

let micro ?(coefficients = generic_coefficients) (k : T.kind) =
  let gates = Milo_netlist.Stats.kind_gates k in
  {
    est_area = gates *. coefficients.cells_per_gate;
    est_delay = kind_levels k *. coefficients.ns_per_level;
    est_power = gates *. coefficients.mw_per_gate;
  }

(* Whole-design microarchitecture estimate: area/power additive; delay =
   worst levels along an input-to-output sweep is approximated by the
   sum of the two deepest components (a crude but monotone formula). *)
let micro_design ?(coefficients = generic_coefficients) design =
  let per =
    List.map (fun (c : D.comp) -> micro ~coefficients c.D.kind) (D.comps design)
  in
  let est_area = List.fold_left (fun a e -> a +. e.est_area) 0.0 per in
  let est_power = List.fold_left (fun a e -> a +. e.est_power) 0.0 per in
  let sorted =
    List.sort (fun a b -> compare b.est_delay a.est_delay) per
  in
  let est_delay =
    match sorted with
    | [] -> 0.0
    | [ e ] -> e.est_delay
    | e1 :: e2 :: _ -> e1.est_delay +. (0.7 *. e2.est_delay)
  in
  { est_area; est_delay; est_power }
