(** Static timing analysis over technology-mapped (macro-level) designs.

    Arrival(out) = max over inputs (arrival(in) + arc delay) + drive ×
    output load.  Sources: input ports (optionally offset) and
    sequential CLK→Q launches.  Endpoints: output ports and sequential
    data/control pins. *)

module D = Milo_netlist.Design

type env = string -> Milo_library.Macro.t

type endpoint = Ep_port of string | Ep_seq_pin of int * string

type t

val net_load : t -> int -> float
val analyze : ?input_arrivals:(string * float) list -> env -> D.t -> t
(** Raises [Invalid_argument] on unmapped components or combinational
    loops. *)

val worst_delay : t -> float
val endpoints : t -> (endpoint * float) list
(** Sorted by arrival, latest first. *)

val net_arrival : t -> int -> float option

type token
(** Undo record for one {!update}: the previous value of every arrival
    and endpoint the update overwrote. *)

val update : t -> touched_nets:int list -> touched_comps:int list -> token
(** Re-propagate arrivals through the forward cone of the given nets
    and components (typically read off a design change log) instead of
    re-analyzing the whole design.  The touched sets must cover every
    net whose driver, load or existence changed and every component
    added, removed, re-kinded or re-connected since the last
    [analyze]/[update].  Returns a token for {!rollback}; tokens must
    be rolled back newest-first.  On [Invalid_argument] (unmapped
    component, combinational loop) the state is restored before the
    exception propagates. *)

val rollback : t -> token -> unit
(** Restore the arrival state exactly as it was before the
    corresponding {!update}. *)

type hop = { comp : int; in_pin : string; out_pin : string }

type path = {
  path_endpoint : endpoint;
  path_delay : float;
  hops : hop list;  (** input side first *)
}

val critical_path : t -> path option
val critical_paths : ?count:int -> t -> path list
val slacks : required:float -> t -> (endpoint * float) list
val endpoint_name : t -> endpoint -> string
