(* Static timing analysis over macro-level designs.

   Arrival model: arrival(out pin) = max over inputs (arrival(in net) +
   arc(in,out)) + drive × load(out net).  Sources are input ports and
   sequential macro CLK→Q launches; endpoints are output ports and
   sequential macro data/control pins.  Sequential components break
   combinational paths, as in the paper's timing analyzer (Figure 8).

   [analyze] evaluates every combinational macro exactly once, in
   levelized (Kahn) topological order — O(comps + arcs) instead of the
   restart-until-quiescent worklist it replaced.  [update] re-levelizes
   and re-propagates only the forward cone of a set of touched nets and
   components, recording every overwritten arrival in a {!token} so
   [rollback] can restore the previous state exactly; tokens must be
   rolled back in LIFO order. *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types
module M = Milo_library.Macro

type env = string -> M.t

type endpoint = Ep_port of string | Ep_seq_pin of int * string

type t = {
  design : D.t;
  env : env;
  input_arrivals : (string * float) list;
  net_arrival : (int, float) Hashtbl.t;
  net_from : (int, int * string * string) Hashtbl.t;
      (* net -> (comp, in_pin, out_pin) that determined its arrival *)
  ep_arrival : (endpoint, float) Hashtbl.t;
  mutable worst_cache : float option;
}

type token = {
  tk_net : (int, float option * (int * string * string) option) Hashtbl.t;
      (* first-touch previous (arrival, from) per net *)
  tk_ep : (endpoint, float option) Hashtbl.t;
}

let macro_of env (c : D.comp) =
  match c.D.kind with
  | T.Macro m -> Some (env m)
  | T.Constant _ -> None
  | T.Gate _ | T.Multiplexor _ | T.Decoder _ | T.Comparator _ | T.Logic_unit _
  | T.Arith_unit _ | T.Register _ | T.Counter _ | T.Instance _ ->
      invalid_arg
        (Printf.sprintf
           "Sta: component %s (%s) is not technology-mapped; compile first"
           c.D.cname (T.kind_name c.D.kind))

let net_load t nid =
  let n = D.net t.design nid in
  let pin_load (cid, pin) =
    let c = D.comp t.design cid in
    match macro_of t.env c with
    | None -> 0.0
    | Some m ->
        if List.mem pin m.M.inputs then m.M.load else 0.0
  in
  let port_load = match n.D.nport with Some (_, T.Output) -> 1.0 | _ -> 0.0 in
  List.fold_left (fun acc p -> acc +. pin_load p) port_load n.D.npins

(* --- State mutators (token-recording) --------------------------------- *)

let save_net tok t nid =
  match tok with
  | None -> ()
  | Some tk ->
      if not (Hashtbl.mem tk.tk_net nid) then
        Hashtbl.replace tk.tk_net nid
          (Hashtbl.find_opt t.net_arrival nid, Hashtbl.find_opt t.net_from nid)

let set ?tok t nid v from =
  save_net tok t nid;
  Hashtbl.replace t.net_arrival nid v;
  match from with
  | Some f -> Hashtbl.replace t.net_from nid f
  | None -> Hashtbl.remove t.net_from nid

let clear_net ?tok t nid =
  save_net tok t nid;
  Hashtbl.remove t.net_arrival nid;
  Hashtbl.remove t.net_from nid

let set_ep ?tok t ep v =
  (match tok with
  | None -> ()
  | Some tk ->
      if not (Hashtbl.mem tk.tk_ep ep) then
        Hashtbl.replace tk.tk_ep ep (Hashtbl.find_opt t.ep_arrival ep));
  Hashtbl.replace t.ep_arrival ep v;
  t.worst_cache <- None

let remove_ep ?tok t ep =
  (match tok with
  | None -> ()
  | Some tk ->
      if not (Hashtbl.mem tk.tk_ep ep) then
        Hashtbl.replace tk.tk_ep ep (Hashtbl.find_opt t.ep_arrival ep));
  Hashtbl.remove t.ep_arrival ep;
  t.worst_cache <- None

let arr_default t nid =
  Option.value ~default:0.0 (Hashtbl.find_opt t.net_arrival nid)

(* --- Evaluation ------------------------------------------------------- *)

(* Combinational macro driving [nid] (if any), or the seed class of the
   net's driver.  Undriven nets arrive at time 0 (absent from the
   table), as do unconnected pins. *)
type drv =
  | Drv_comb of int
  | Drv_seq of M.t * string
  | Drv_const
  | Drv_none

let driver_of t nid =
  match D.net_opt t.design nid with
  | None -> Drv_none
  | Some n ->
      List.fold_left
        (fun acc (cid, pin) ->
          match acc with
          | Drv_comb _ | Drv_seq _ | Drv_const -> acc
          | Drv_none -> (
              match D.comp_opt t.design cid with
              | None -> Drv_none
              | Some c -> (
                  match macro_of t.env c with
                  | None -> if pin = "Y" then Drv_const else Drv_none
                  | Some m ->
                      if List.mem pin m.M.outputs then
                        if M.is_sequential m then Drv_seq (m, pin)
                        else Drv_comb cid
                      else Drv_none)))
        Drv_none n.D.npins

let seq_launch t m pin nid =
  let d =
    match M.arc_delay_opt m "CLK" pin with
    | Some d -> d
    | None -> M.worst_delay m
  in
  d +. (m.M.drive *. net_load t nid)

(* Evaluate one combinational macro: worst input arrival + arc delay,
   plus drive × load, per output net. *)
let eval_comp ?tok t (c : D.comp) (m : M.t) =
  let in_arrs =
    List.map
      (fun pin ->
        match D.connection t.design c.D.id pin with
        | Some nid -> (pin, arr_default t nid)
        | None -> (pin, 0.0))
      m.M.inputs
  in
  List.iter
    (fun out ->
      match D.connection t.design c.D.id out with
      | None -> ()
      | Some onid ->
          let best =
            List.fold_left
              (fun acc (pin, a) ->
                match M.arc_delay_opt m pin out with
                | Some d -> (
                    let v = a +. d in
                    match acc with
                    | Some (bv, _) when bv >= v -> acc
                    | _ -> Some (v, pin))
                | None -> acc)
              None in_arrs
          in
          let v, from =
            match best with
            | Some (v, pin) -> (v, Some (c.D.id, pin, out))
            | None -> (0.0, None)
          in
          set ?tok t onid (v +. (m.M.drive *. net_load t onid)) from)
    m.M.outputs

(* Combinational macros reading [nid] through an input pin — the
   forward edges of the propagation cone. *)
let comb_readers t nid =
  match D.net_opt t.design nid with
  | None -> []
  | Some n ->
      List.filter_map
        (fun (cid, pin) ->
          match D.comp_opt t.design cid with
          | None -> None
          | Some c -> (
              match macro_of t.env c with
              | Some m
                when (not (M.is_sequential m)) && List.mem pin m.M.inputs ->
                  Some cid
              | Some _ | None -> None))
        n.D.npins

(* Kahn levelization over [members] (comp id -> ()): evaluate each
   member exactly once in dependency order; any leftover means a
   combinational loop. *)
let propagate ?tok t members =
  let indeg = Hashtbl.create (Hashtbl.length members * 2) in
  let consumers = Hashtbl.create (Hashtbl.length members * 2) in
  Hashtbl.iter
    (fun cid () ->
      let c = D.comp t.design cid in
      let m = Option.get (macro_of t.env c) in
      let deg = ref 0 in
      List.iter
        (fun pin ->
          match D.connection t.design cid pin with
          | None -> ()
          | Some nid -> (
              match driver_of t nid with
              | Drv_comb did when Hashtbl.mem members did ->
                  incr deg;
                  Hashtbl.replace consumers nid
                    (cid
                    :: Option.value ~default:[]
                         (Hashtbl.find_opt consumers nid))
              | Drv_comb _ | Drv_seq _ | Drv_const | Drv_none -> ()))
        m.M.inputs;
      Hashtbl.replace indeg cid !deg)
    members;
  let queue = Queue.create () in
  Hashtbl.iter (fun cid () -> if Hashtbl.find indeg cid = 0 then Queue.add cid queue) members;
  let evaluated = ref 0 in
  while not (Queue.is_empty queue) do
    let cid = Queue.pop queue in
    incr evaluated;
    let c = D.comp t.design cid in
    let m = Option.get (macro_of t.env c) in
    eval_comp ?tok t c m;
    List.iter
      (fun out ->
        match D.connection t.design cid out with
        | None -> ()
        | Some onid ->
            List.iter
              (fun cid' ->
                let dg = Hashtbl.find indeg cid' - 1 in
                Hashtbl.replace indeg cid' dg;
                if dg = 0 then Queue.add cid' queue)
              (Option.value ~default:[] (Hashtbl.find_opt consumers onid)))
      m.M.outputs
  done;
  if !evaluated < Hashtbl.length members then
    let stuck =
      Hashtbl.fold
        (fun cid () acc ->
          if Hashtbl.find indeg cid > 0 then
            (D.comp t.design cid).D.cname :: acc
          else acc)
        members []
    in
    invalid_arg
      (Printf.sprintf "Sta.analyze: combinational loop through %s"
         (String.concat ", " (List.sort compare stuck)))

(* Endpoint refresh for one net: the output port bound to it and the
   sequential data/control pins reading it. *)
let refresh_net_endpoints ?tok t nid =
  match D.net_opt t.design nid with
  | None -> ()
  | Some n ->
      (match n.D.nport with
      | Some (p, T.Output) -> set_ep ?tok t (Ep_port p) (arr_default t nid)
      | Some _ | None -> ());
      List.iter
        (fun (cid, pin) ->
          match D.comp_opt t.design cid with
          | None -> ()
          | Some c -> (
              match macro_of t.env c with
              | Some m
                when M.is_sequential m && pin <> "CLK"
                     && List.mem pin m.M.inputs ->
                  set_ep ?tok t (Ep_seq_pin (cid, pin)) (arr_default t nid)
              | Some _ | None -> ()))
        n.D.npins

(* Input arrival offsets, e.g. late-arriving primary inputs. *)
let analyze ?(input_arrivals = []) env design =
  let t =
    {
      design;
      env;
      input_arrivals;
      net_arrival = Hashtbl.create 64;
      net_from = Hashtbl.create 64;
      ep_arrival = Hashtbl.create 32;
      worst_cache = None;
    }
  in
  (* Seed: input ports and constants at their arrival, sequential
     launches at clk->q + drive*load. *)
  List.iter
    (fun (p, dir, nid) ->
      if dir = T.Input then
        set t nid (Option.value ~default:0.0 (List.assoc_opt p input_arrivals)) None)
    (D.ports design);
  let members = Hashtbl.create 64 in
  List.iter
    (fun (c : D.comp) ->
      match macro_of env c with
      | None ->
          (* constants arrive at time 0 *)
          List.iter
            (fun (pin, nid) -> if pin = "Y" then set t nid 0.0 None)
            (D.connections design c.D.id)
      | Some m ->
          if M.is_sequential m then
            List.iter
              (fun (pin, nid) ->
                if List.mem pin m.M.outputs then
                  set t nid (seq_launch t m pin nid) None)
              (D.connections design c.D.id)
          else Hashtbl.replace members c.D.id ())
    (D.comps design);
  propagate t members;
  (* Endpoints. *)
  List.iter
    (fun (p, dir, nid) ->
      if dir = T.Output then set_ep t (Ep_port p) (arr_default t nid))
    (D.ports design);
  List.iter
    (fun (c : D.comp) ->
      match macro_of env c with
      | Some m when M.is_sequential m ->
          List.iter
            (fun pin ->
              if pin <> "CLK" then
                match D.connection design c.D.id pin with
                | Some nid -> set_ep t (Ep_seq_pin (c.D.id, pin)) (arr_default t nid)
                | None -> ())
            m.M.inputs
      | Some _ | None -> ())
    (D.comps design);
  t

let worst_delay t =
  match t.worst_cache with
  | Some w -> w
  | None ->
      let w = Hashtbl.fold (fun _ v acc -> Float.max acc v) t.ep_arrival 0.0 in
      t.worst_cache <- Some w;
      w

let endpoints t =
  Hashtbl.fold (fun ep v acc -> (ep, v) :: acc) t.ep_arrival []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let net_arrival t nid = Hashtbl.find_opt t.net_arrival nid

(* --- Incremental update ----------------------------------------------- *)

let rollback t tok =
  Hashtbl.iter
    (fun nid (oa, ofrom) ->
      (match oa with
      | Some v -> Hashtbl.replace t.net_arrival nid v
      | None -> Hashtbl.remove t.net_arrival nid);
      match ofrom with
      | Some f -> Hashtbl.replace t.net_from nid f
      | None -> Hashtbl.remove t.net_from nid)
    tok.tk_net;
  Hashtbl.iter
    (fun ep oa ->
      match oa with
      | Some v -> Hashtbl.replace t.ep_arrival ep v
      | None -> Hashtbl.remove t.ep_arrival ep)
    tok.tk_ep;
  t.worst_cache <- None

let update t ~touched_nets ~touched_comps =
  let design = t.design in
  let tok = { tk_net = Hashtbl.create 32; tk_ep = Hashtbl.create 16 } in
  try
    (* Dirty nets: the touched nets plus everything still connected to a
       touched component. *)
    let dirty = Hashtbl.create 32 in
    let add_dirty nid = Hashtbl.replace dirty nid () in
    List.iter add_dirty touched_nets;
    List.iter
      (fun cid ->
        match D.comp_opt design cid with
        | Some c -> Hashtbl.iter (fun _ nid -> add_dirty nid) c.D.conns
        | None -> ())
      touched_comps;
    (* Re-seed every dirty net from its driver class; collect the
       combinational comps that must re-evaluate (dirty drivers, dirty
       readers, and the touched comps themselves). *)
    let seeds = Hashtbl.create 32 in
    let add_seed cid = Hashtbl.replace seeds cid () in
    List.iter
      (fun cid ->
        match D.comp_opt design cid with
        | None -> ()
        | Some c -> (
            match macro_of t.env c with
            | Some m when not (M.is_sequential m) -> add_seed cid
            | Some _ | None -> ()))
      touched_comps;
    Hashtbl.iter
      (fun nid () ->
        match D.net_opt design nid with
        | None -> clear_net ~tok t nid
        | Some n ->
            (match driver_of t nid with
            | Drv_comb cid -> add_seed cid
            | Drv_const -> set ~tok t nid 0.0 None
            | Drv_seq (m, pin) -> set ~tok t nid (seq_launch t m pin nid) None
            | Drv_none -> (
                match n.D.nport with
                | Some (p, T.Input) ->
                    set ~tok t nid
                      (Option.value ~default:0.0
                         (List.assoc_opt p t.input_arrivals))
                      None
                | Some _ | None -> clear_net ~tok t nid));
            List.iter add_seed (comb_readers t nid))
      dirty;
    (* Forward closure of the seeds: the cone that re-propagates. *)
    let members = Hashtbl.create 64 in
    let stack = ref [] in
    Hashtbl.iter (fun cid () -> stack := cid :: !stack) seeds;
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | cid :: rest ->
          stack := rest;
          if not (Hashtbl.mem members cid) then begin
            Hashtbl.replace members cid ();
            let c = D.comp design cid in
            let m = Option.get (macro_of t.env c) in
            List.iter
              (fun out ->
                match D.connection design cid out with
                | None -> ()
                | Some onid ->
                    List.iter
                      (fun cid' ->
                        if not (Hashtbl.mem members cid') then
                          stack := cid' :: !stack)
                      (comb_readers t onid))
              m.M.outputs
          end
    done;
    if Milo_trace.Trace.enabled () then begin
      Milo_trace.Trace.sample "sta.update.dirty_nets"
        (float_of_int (Hashtbl.length dirty));
      Milo_trace.Trace.sample "sta.update.cone"
        (float_of_int (Hashtbl.length members))
    end;
    propagate ~tok t members;
    (* Endpoints: every net whose arrival was rewritten, every dirty
       net, and the endpoint pins of touched comps (which may have been
       added, removed or re-kinded). *)
    Hashtbl.iter (fun nid _ -> refresh_net_endpoints ~tok t nid) tok.tk_net;
    Hashtbl.iter
      (fun nid () ->
        if not (Hashtbl.mem tok.tk_net nid) then refresh_net_endpoints ~tok t nid)
      dirty;
    List.iter
      (fun cid ->
        let existing =
          Hashtbl.fold
            (fun ep _ acc ->
              match ep with
              | Ep_seq_pin (c, _) when c = cid -> ep :: acc
              | Ep_seq_pin _ | Ep_port _ -> acc)
            t.ep_arrival []
        in
        List.iter (fun ep -> remove_ep ~tok t ep) existing;
        match D.comp_opt design cid with
        | None -> ()
        | Some c -> (
            match macro_of t.env c with
            | Some m when M.is_sequential m ->
                List.iter
                  (fun pin ->
                    if pin <> "CLK" then
                      match D.connection design cid pin with
                      | Some nid ->
                          set_ep ~tok t (Ep_seq_pin (cid, pin))
                            (arr_default t nid)
                      | None -> ())
                  m.M.inputs
            | Some _ | None -> ()))
      touched_comps;
    tok
  with e ->
    (* Leave the analysis state exactly as before the failed update. *)
    rollback t tok;
    raise e

(* --- Paths ------------------------------------------------------------ *)

type hop = { comp : int; in_pin : string; out_pin : string }

type path = {
  path_endpoint : endpoint;
  path_delay : float;
  hops : hop list;  (* from input side to endpoint *)
}

let endpoint_net t = function
  | Ep_port p -> Some (D.port_net t.design p)
  | Ep_seq_pin (cid, pin) -> D.connection t.design cid pin

(* Trace back the worst path into an endpoint. *)
let path_to t ep delay =
  let rec back nid acc =
    match Hashtbl.find_opt t.net_from nid with
    | None -> acc
    | Some (cid, in_pin, out_pin) -> (
        let hop = { comp = cid; in_pin; out_pin } in
        match D.connection t.design cid in_pin with
        | Some prev -> back prev (hop :: acc)
        | None -> hop :: acc)
  in
  let hops = match endpoint_net t ep with Some nid -> back nid [] | None -> [] in
  { path_endpoint = ep; path_delay = delay; hops }

let critical_path t =
  match endpoints t with
  | [] -> None
  | (ep, d) :: _ -> Some (path_to t ep d)

let critical_paths ?(count = 4) t =
  endpoints t
  |> List.filteri (fun i _ -> i < count)
  |> List.map (fun (ep, d) -> path_to t ep d)

(* Slack of each endpoint against a required time. *)
let slacks ~required t =
  List.map (fun (ep, d) -> (ep, required -. d)) (endpoints t)

let endpoint_name t = function
  | Ep_port p -> p
  | Ep_seq_pin (cid, pin) ->
      Printf.sprintf "%s.%s" (D.comp t.design cid).D.cname pin
