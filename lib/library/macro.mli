(** Library macros: SSI/MSI building blocks with timing, area, power and
    behavioural data.

    Timing: delay(input→output) = arc delay + [drive] × total sink load.
    Per-input arcs differ slightly (strategy 1's lever); [symmetric]
    lists interchangeable input-pin groups. *)

open Milo_boolfunc

type power_level = Standard | High

type dff_data = Direct | Muxed of int  (** flip-flop fed directly or through an n-input mux *)

type behavior =
  | Combinational of (string * Truth_table.t) list
  | Comb_eval of (bool array -> bool array)
  | Seq_dff of {
      data : dff_data;
      latch : bool;
      has_set : bool;
      has_reset : bool;
      has_enable : bool;
      inverting : bool;
    }
  | Seq_counter of {
      bits : int;
      has_load : bool;
      has_updown : bool;
      has_reset : bool;
      has_enable : bool;
    }
  | Seq_custom of {
      state_bits : int;
      state_only : string list;
          (** outputs that depend on the stored state alone *)
      custom_outputs : state:int -> (string * bool) list -> (string * bool) list;
      custom_next : state:int -> (string * bool) list -> int;
    }  (** escape hatch for sequential behaviours outside the two
           built-in shapes; simulated lane-by-lane in the packed
           engine *)

type t = {
  mname : string;
  pins : (string * Milo_netlist.Types.dir) list;
  inputs : string list;
  outputs : string list;
  arcs : ((string * string) * float) list;
  area : float;
  power : float;
  drive : float;
  load : float;
  behavior : behavior;
  power_level : power_level;
  base_name : string;
  gates : float;
  symmetric : string list list;
}

val name : t -> string

val make :
  ?power_level:power_level ->
  ?base_name:string ->
  ?drive:float ->
  ?load:float ->
  ?input_skew:float ->
  ?arcs:((string * string) * float) list ->
  ?symmetric:string list list ->
  delay:float ->
  area:float ->
  power:float ->
  gates:float ->
  string ->
  (string * Milo_netlist.Types.dir) list ->
  behavior ->
  t
(** Build a macro.  Unless [arcs] is given, every input→output arc gets
    [delay × (1 + input_skew × input_index)]. *)

val arc_delay : t -> string -> string -> float
val arc_delay_opt : t -> string -> string -> float option
val worst_delay : t -> float
val is_sequential : t -> bool

val single_output_tt : t -> Truth_table.t option
(** The macro's truth table when it is single-output combinational with a
    table-sized input count. *)

val eval_comb : t -> bool array -> bool array
(** Evaluate a combinational macro on inputs ordered as [inputs];
    raises on sequential macros. *)

val state_only_outputs : t -> string list
(** Output pins that are a function of the stored state alone (safe to
    seed before the component's inputs are known); empty for
    combinational macros. *)

val state_bits : t -> int
(** Width of the stored state; 0 for combinational macros. *)

val in_same_symmetry_group : t -> string -> string -> bool
