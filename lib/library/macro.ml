(* Library macros: the SSI/MSI building blocks of the generic library
   (Figure 13) and of the technology libraries the mapper targets.

   Timing model: delay(input -> output) = arc delay + drive * total sink
   load on the output net.  Per-input arc delays differ (later inputs are
   slightly slower), which is what strategy 1 "swap equivalent signals"
   exploits; [symmetric] lists the interchangeable input groups. *)

open Milo_boolfunc

type power_level = Standard | High

type dff_data = Direct | Muxed of int

type behavior =
  | Combinational of (string * Truth_table.t) list
      (** per output pin, truth table over the macro's inputs in order *)
  | Comb_eval of (bool array -> bool array)
      (** for macros too wide for a truth table (e.g. 4-bit adders) *)
  | Seq_dff of {
      data : dff_data;
      latch : bool;
      has_set : bool;
      has_reset : bool;
      has_enable : bool;
      inverting : bool;
    }
  | Seq_counter of {
      bits : int;
      has_load : bool;
      has_updown : bool;
      has_reset : bool;
      has_enable : bool;
    }
  | Seq_custom of {
      state_bits : int;
      state_only : string list;
      custom_outputs : state:int -> (string * bool) list -> (string * bool) list;
      custom_next : state:int -> (string * bool) list -> int;
    }

type t = {
  mname : string;
  pins : (string * Milo_netlist.Types.dir) list;
  inputs : string list;
  outputs : string list;
  arcs : ((string * string) * float) list;  (** (input, output) -> delay *)
  area : float;  (** cells *)
  power : float;  (** mW *)
  drive : float;  (** extra delay per unit of fanout load *)
  load : float;  (** load each input presents *)
  behavior : behavior;
  power_level : power_level;
  base_name : string;  (** family name shared by power variants *)
  gates : float;  (** two-input-equivalent complexity *)
  symmetric : string list list;  (** interchangeable input pin groups *)
}

let name m = m.mname

let make ?(power_level = Standard) ?base_name ?(drive = 0.05) ?(load = 1.0)
    ?(input_skew = 0.08) ?arcs ?(symmetric = []) ~delay ~area ~power ~gates
    mname pins behavior =
  let open Milo_netlist.Types in
  let inputs = List.filter_map (fun (p, d) -> if d = Input then Some p else None) pins in
  let outputs =
    List.filter_map (fun (p, d) -> if d = Output then Some p else None) pins
  in
  let arcs =
    match arcs with
    | Some a -> a
    | None ->
        List.concat
          (List.mapi
             (fun i inp ->
               let d = delay *. (1.0 +. (input_skew *. float_of_int i)) in
               List.map (fun out -> ((inp, out), d)) outputs)
             inputs)
  in
  {
    mname;
    pins;
    inputs;
    outputs;
    arcs;
    area;
    power;
    drive;
    load;
    behavior;
    power_level;
    base_name = Option.value base_name ~default:mname;
    gates;
    symmetric;
  }

let arc_delay m inp out =
  match List.assoc_opt (inp, out) m.arcs with
  | Some d -> d
  | None -> invalid_arg (Printf.sprintf "Macro.arc_delay: %s has no arc %s->%s" m.mname inp out)

let arc_delay_opt m inp out = List.assoc_opt (inp, out) m.arcs

let worst_delay m =
  List.fold_left (fun acc (_, d) -> Float.max acc d) 0.0 m.arcs

let is_sequential m =
  match m.behavior with
  | Seq_dff _ | Seq_counter _ | Seq_custom _ -> true
  | Combinational _ | Comb_eval _ -> false

let single_output_tt m =
  match (m.behavior, m.outputs) with
  | Combinational [ (_, tt) ], [ _ ] -> Some tt
  | Combinational _, _ | Comb_eval _, _ | Seq_dff _, _ | Seq_counter _, _
  | Seq_custom _, _ ->
      None

let eval_comb m input =
  match m.behavior with
  | Combinational outs ->
      let arr = Array.of_list (List.map (fun (_, tt) -> Truth_table.eval tt input) outs) in
      arr
  | Comb_eval f -> f input
  | Seq_dff _ | Seq_counter _ | Seq_custom _ ->
      invalid_arg (Printf.sprintf "Macro.eval_comb: %s is sequential" m.mname)

(* Outputs that are a function of the stored state alone — the set a
   simulator may seed before the component's inputs are known.  A
   counter's COUT is input-dependent when the direction comes from a
   pin; everything else sequential here depends only on the state. *)
let state_only_outputs m =
  match m.behavior with
  | Combinational _ | Comb_eval _ -> []
  | Seq_dff _ -> m.outputs
  | Seq_counter { bits; has_updown; _ } ->
      List.init bits (fun b -> Printf.sprintf "Q%d" b)
      @ (if has_updown then [] else [ "COUT" ])
  | Seq_custom { state_only; _ } -> state_only

let state_bits m =
  match m.behavior with
  | Combinational _ | Comb_eval _ -> 0
  | Seq_dff _ -> 1
  | Seq_counter { bits; _ } -> bits
  | Seq_custom { state_bits; _ } -> state_bits

let in_same_symmetry_group m a b =
  List.exists (fun g -> List.mem a g && List.mem b g) m.symmetric
