(** Incremental cost evaluation: delta-STA plus streaming area/power
    accumulators, kept in lock-step with a design's change log.

    A measurer owns the timing state ({!Milo_timing.Sta.t}) and running
    area/power totals of one design.  The engine's apply/measure/undo
    discipline drives it with {!advance} (fold a change log in),
    {!retreat} (the design was undone; restore the previous state
    exactly) and {!commit} (keep it).  Macro lookups go through a
    hit-counted memo cache shared by the timing and estimate sides. *)

module D = Milo_netlist.Design

type totals = { delay : float; area : float; power : float }

type stats = {
  advances : int;
  retreats : int;
  commits : int;
  resyncs : int;
  env_hits : int;
  env_misses : int;  (** misses = distinct macros resolved *)
  oracle_checks : int;
}

type t

type token
(** Undo record for one {!advance}; tokens retreat newest-first. *)

exception Divergence of string
(** Raised by the differential oracle when the incremental state
    disagrees with a full recompute (see {!set_debug_check}). *)

val set_debug_check : bool -> unit
(** When enabled, every {!advance} and {!retreat} is cross-checked
    against a from-scratch [Sta.analyze] + estimate fold and raises
    {!Divergence} if they differ by more than 1e-9 (relative).  Costs a
    full recompute per measurement — debugging only.  Global; off by
    default. *)

val debug_check_enabled : unit -> bool

val create :
  ?input_arrivals:(string * float) list ->
  Milo_library.Technology.t ->
  D.t ->
  t
(** Full analysis of the design's current state.  Raises
    [Invalid_argument] on unmapped components or combinational loops,
    like [Sta.analyze]. *)

val design : t -> D.t
val env : t -> Milo_timing.Sta.env
(** The memoized macro environment (also usable for estimates). *)

val sta : t -> Milo_timing.Sta.t
(** The live timing view; valid until the next advance/retreat. *)

val current : t -> totals
(** The running totals — O(1), no recompute. *)

val advance : t -> D.entry list -> token
(** Fold the (oldest-first, as from [D.entries]) change-log entries
    into the state: delta-STA over the touched cone, kind-delta
    adjustment of the totals.  Call after the edits have been applied
    to the design.  On an exception the state is left as before the
    call. *)

val retreat : t -> token -> unit
(** Call after [D.undo] of the corresponding log: restores the exact
    pre-advance state (absolute totals, not delta subtraction). *)

val commit : t -> token -> unit
(** Keep the advanced state; the token is dead. *)

val resync : ?reason:string -> t -> unit
(** Full recompute in place — the safety valve when the log for an edit
    is unavailable (e.g. a failed advance on the commit path).
    [reason] labels the [Measure_resync] trace event when a tracer is
    installed. *)

val stats : t -> stats
