(* Incremental cost evaluation: delta-STA plus streaming area/power.

   The measured disciplines evaluate thousands of candidate rewrites per
   step; recomputing a full-design STA and re-folding every component
   for each candidate makes evaluation cost O(design) when the rewrite
   touched three gates.  A measurer keeps the timing state and the
   running area/power totals of one design in lock-step with its change
   log: [advance] folds a log's entries into the state (re-propagating
   arrivals through the touched cone only, adjusting the totals by the
   entries' kind deltas), [retreat] restores the exact previous state
   after the design itself has been undone, and [commit] keeps it.
   Macro lookups are memoized, so the per-candidate [Technology.find]
   traffic collapses onto a hit-counted cache.

   Correctness is enforced by a differential oracle ([set_debug_check],
   the measurement twin of the engine's debug lint): every advance and
   retreat is cross-checked against a from-scratch recompute, and any
   divergence beyond 1e-9 (relative) raises {!Divergence}. *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types
module M = Milo_library.Macro
module Technology = Milo_library.Technology
module Sta = Milo_timing.Sta
module Estimate = Milo_estimate.Estimate

type totals = { delay : float; area : float; power : float }

type stats = {
  advances : int;
  retreats : int;
  commits : int;
  resyncs : int;
  env_hits : int;
  env_misses : int;
  oracle_checks : int;
}

type counters = {
  mutable c_advances : int;
  mutable c_retreats : int;
  mutable c_commits : int;
  mutable c_resyncs : int;
  mutable c_env_hits : int;
  mutable c_env_misses : int;
  mutable c_oracle_checks : int;
}

type t = {
  design : D.t;
  env : Sta.env;  (* memoized technology lookup *)
  input_arrivals : (string * float) list;
  mutable sta : Sta.t;
  mutable area : float;
  mutable power : float;
  ct : counters;
}

type token = { sta_tok : Sta.token; old_area : float; old_power : float }

exception Divergence of string

let () =
  Printexc.register_printer (function
    | Divergence msg -> Some ("Measure.Divergence: " ^ msg)
    | _ -> None)

let debug_check = ref false
let set_debug_check v = debug_check := v
let debug_check_enabled () = !debug_check

(* Relative tolerance of the oracle (and of the equivalence suite). *)
let tolerance = 1e-9

let create ?(input_arrivals = []) tech design =
  let ct =
    {
      c_advances = 0;
      c_retreats = 0;
      c_commits = 0;
      c_resyncs = 0;
      c_env_hits = 0;
      c_env_misses = 0;
      c_oracle_checks = 0;
    }
  in
  let cache : (string, M.t) Hashtbl.t = Hashtbl.create 64 in
  let env name =
    match Hashtbl.find_opt cache name with
    | Some m ->
        ct.c_env_hits <- ct.c_env_hits + 1;
        m
    | None ->
        let m = Technology.find tech name in
        ct.c_env_misses <- ct.c_env_misses + 1;
        Hashtbl.replace cache name m;
        m
  in
  {
    design;
    env;
    input_arrivals;
    sta = Sta.analyze ~input_arrivals env design;
    area = Estimate.area env design;
    power = Estimate.power env design;
    ct;
  }

let design t = t.design
let env t = t.env
let sta t = t.sta

let current t =
  { delay = Sta.worst_delay t.sta; area = t.area; power = t.power }

let stats t =
  {
    advances = t.ct.c_advances;
    retreats = t.ct.c_retreats;
    commits = t.ct.c_commits;
    resyncs = t.ct.c_resyncs;
    env_hits = t.ct.c_env_hits;
    env_misses = t.ct.c_env_misses;
    oracle_checks = t.ct.c_oracle_checks;
  }

let resync ?(reason = "requested") t =
  t.ct.c_resyncs <- t.ct.c_resyncs + 1;
  if Milo_trace.Trace.enabled () then
    Milo_trace.Trace.emit (Milo_trace.Trace.Measure_resync { reason });
  t.sta <- Sta.analyze ~input_arrivals:t.input_arrivals t.env t.design;
  t.area <- Estimate.area t.env t.design;
  t.power <- Estimate.power t.env t.design

(* --- Differential oracle ---------------------------------------------- *)

let close got want =
  Float.abs (got -. want) <= tolerance *. Float.max 1.0 (Float.abs want)

let check ~where t =
  t.ct.c_oracle_checks <- t.ct.c_oracle_checks + 1;
  let full = Sta.analyze ~input_arrivals:t.input_arrivals t.env t.design in
  let fd = Sta.worst_delay full in
  let fa = Estimate.area t.env t.design in
  let fp = Estimate.power t.env t.design in
  let d = Sta.worst_delay t.sta in
  if not (close d fd && close t.area fa && close t.power fp) then
    raise
      (Divergence
         (Printf.sprintf
            "%s on %s: incremental delay=%.12g area=%.12g power=%.12g vs full \
             delay=%.12g area=%.12g power=%.12g"
            where (D.name t.design) d t.area t.power fd fa fp))

(* --- Change-log folding ----------------------------------------------- *)

(* The nets and comps whose timing may differ, read from the log
   entries against the post-application design.  A connect dirties the
   previous net (its load changed), the current net of that pin, and
   the component itself; structural entries dirty the object and its
   (saved or current) connections. *)
let touched t entries =
  let nets = Hashtbl.create 16 and comps = Hashtbl.create 16 in
  let add_net nid = Hashtbl.replace nets nid () in
  let add_comp cid = Hashtbl.replace comps cid () in
  let comp_nets cid =
    match D.comp_opt t.design cid with
    | Some c -> Hashtbl.iter (fun _ nid -> add_net nid) c.D.conns
    | None -> ()
  in
  List.iter
    (fun (e : D.entry) ->
      match e with
      | D.E_add_comp (cid, _, _) | D.E_set_kind (cid, _, _) ->
          add_comp cid;
          comp_nets cid
      | D.E_remove_comp (cid, _, _, saved) ->
          add_comp cid;
          List.iter (fun (_, nid) -> add_net nid) saved
      | D.E_connect (cid, pin, prev, _) -> (
          add_comp cid;
          (match prev with Some nid -> add_net nid | None -> ());
          match D.comp_opt t.design cid with
          | Some c -> (
              match Hashtbl.find_opt c.D.conns pin with
              | Some nid -> add_net nid
              | None -> ())
          | None -> ())
      | D.E_add_net (nid, _) | D.E_remove_net (nid, _, _) -> add_net nid)
    entries;
  ( Hashtbl.fold (fun nid () acc -> nid :: acc) nets [],
    Hashtbl.fold (fun cid () acc -> cid :: acc) comps [] )

(* Area/power delta of a log: for every component the log touched
   structurally, the first entry mentioning it tells its kind at the
   start of the log ([E_add_comp]: absent), and the design tells its
   kind now; the delta is the sum of the differences.  Connectivity
   entries carry no area/power. *)
let est_delta t entries =
  let initial : (int, T.kind option) Hashtbl.t = Hashtbl.create 16 in
  let note cid st =
    if not (Hashtbl.mem initial cid) then Hashtbl.replace initial cid st
  in
  List.iter
    (fun (e : D.entry) ->
      match e with
      | D.E_add_comp (cid, _, _) -> note cid None
      | D.E_remove_comp (cid, _, kind, _) -> note cid (Some kind)
      | D.E_set_kind (cid, old, _) -> note cid (Some old)
      | D.E_connect _ | D.E_add_net _ | D.E_remove_net _ -> ())
    entries;
  Hashtbl.fold
    (fun cid st (da, dp) ->
      let ba, bp =
        match st with
        | None -> (0.0, 0.0)
        | Some k -> (Estimate.kind_area t.env k, Estimate.kind_power t.env k)
      in
      let aa, ap =
        match D.comp_opt t.design cid with
        | Some c ->
            (Estimate.kind_area t.env c.D.kind, Estimate.kind_power t.env c.D.kind)
        | None -> (0.0, 0.0)
      in
      (da +. aa -. ba, dp +. ap -. bp))
    initial (0.0, 0.0)

let advance t entries =
  let touched_nets, touched_comps = touched t entries in
  if Milo_trace.Trace.enabled () then begin
    let cn = List.length touched_nets and cc = List.length touched_comps in
    Milo_trace.Trace.sample "measure.cone_nets" (float_of_int cn);
    Milo_trace.Trace.sample "measure.cone_comps" (float_of_int cc);
    Milo_trace.Trace.emit
      (Milo_trace.Trace.Measure_advance { cone_nets = cn; cone_comps = cc });
    let hits = t.ct.c_env_hits and misses = t.ct.c_env_misses in
    if hits + misses > 0 then
      Milo_trace.Trace.set_gauge "measure.env_hit_rate"
        (float_of_int hits /. float_of_int (hits + misses))
  end;
  let da, dp = est_delta t entries in
  let sta_tok = Sta.update t.sta ~touched_nets ~touched_comps in
  let tok = { sta_tok; old_area = t.area; old_power = t.power } in
  t.area <- t.area +. da;
  t.power <- t.power +. dp;
  t.ct.c_advances <- t.ct.c_advances + 1;
  if !debug_check then check ~where:"advance" t;
  tok

(* Restore the absolute pre-advance totals rather than subtracting the
   delta back out, so a retreat is exact (no float drift accumulates
   across evaluate/undo cycles). *)
let retreat t tok =
  if Milo_trace.Trace.enabled () then
    Milo_trace.Trace.emit Milo_trace.Trace.Measure_retreat;
  Sta.rollback t.sta tok.sta_tok;
  t.area <- tok.old_area;
  t.power <- tok.old_power;
  t.ct.c_retreats <- t.ct.c_retreats + 1;
  if !debug_check then check ~where:"retreat" t

let commit t _tok = t.ct.c_commits <- t.ct.c_commits + 1
