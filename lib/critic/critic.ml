(* Aggregated rule sets: the five experts of the logic optimizer
   (Figure 17) plus cleanups and the microarchitecture critic. *)

let logic = Logic_rules.rules @ Muxff_rules.rules @ Absint_rules.rules
let timing = Timing_rules.rules
let area = Area_rules.rules
let power = Power_rules.rules
let electric = Electric_rules.rules
let cleanup = Cleanup_rules.rules
let micro = Micro_critic.rules

let all_logic_level = logic @ timing @ area @ power @ electric @ cleanup
