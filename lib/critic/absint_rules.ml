(* Logic rules consuming abstract-interpretation facts (the don't-care
   discipline of the paper's logic critic, Section 5).

   Both rules use the analysis as their finder and re-prove the fact
   at apply time (sites can go stale between find and apply in a
   greedy pass), so a stale site degrades to a refused application,
   never a miscompile.

   [absint-prune-unobservable] deliberately reports no [site_comps]:
   the rewrite changes the local function of its cone (it is sound
   only because the cone is masked on every path to an output), so the
   engine's cone-local rule guard must not compare it — the stage
   guards and the whole-design certification tier cover it instead. *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types
module R = Milo_rules.Rule
module Cone = Milo_rules.Cone
module Macro = Milo_library.Macro
module Gate_comp = Milo_compilers.Gate_comp
module Absint = Milo_absint.Absint

let analyze ctx =
  Absint.analyze ~resolve:ctx.R.resolve
    (fun n -> R.find_macro ctx n)
    ctx.R.design

(* Single-output combinational macro components only: removing one
   keeps every other net's driver intact. *)
let collapsible ctx (c : D.comp) =
  match R.macro_of ctx c with
  | Some m ->
      (not (Macro.is_sequential m))
      && List.length m.Macro.outputs = 1
      && Gate_shape.is_const m = None
  | None -> false

let output_net ctx (c : D.comp) =
  match R.macro_of ctx c with
  | Some m -> (
      match m.Macro.outputs with
      | [ o ] -> D.connection ctx.R.design c.D.id o
      | [] | _ :: _ -> None)
  | None -> None

let eligible ctx =
  let tbl = Hashtbl.create 64 in
  List.iter (fun (c : D.comp) -> Hashtbl.replace tbl c.D.id ()) (R.scan_comps ctx);
  fun cid -> Hashtbl.mem tbl cid

(* Cone-local re-proof that [nid] is constant [v]: exhaustive over the
   cone leaves when the cone is small, full re-analysis otherwise. *)
let still_const ctx nid v =
  match Cone.extract ctx ~max_leaves:10 nid with
  | Some cone when cone.Cone.comps <> [] -> (
      let n = List.length cone.Cone.leaves in
      try
        let ok = ref true in
        for m = 0 to (1 lsl n) - 1 do
          let assignment =
            List.mapi
              (fun i leaf -> (leaf, m land (1 lsl i) <> 0))
              cone.Cone.leaves
          in
          if Cone.eval ctx cone assignment <> v then ok := false
        done;
        !ok
      with _ -> false)
  | Some _ | None -> Absint.net_const (analyze ctx) nid = Some v

(* Replace the driver of a proved-constant net with the technology's
   constant macro.  The upstream cone goes dead and is left to the
   dead-logic cleanup. *)
let const_collapse =
  R.make ~name:"absint-const-collapse" ~cls:R.Logic
    ~find:(fun ctx ->
      let st = analyze ctx in
      let ok = eligible ctx in
      List.filter_map
        (fun (nid, v) ->
          match R.driver_comp ctx nid with
          | Some (c, _)
            when ok c.D.id && collapsible ctx c
                 && (R.fanout ctx nid > 0 || R.net_is_port ctx nid) ->
              Some
                (R.site
                   ~data:[ nid; (if v then 1 else 0) ]
                   ~comps:[ c.D.id ]
                   (Printf.sprintf "collapse %s to %d" c.D.cname
                      (if v then 1 else 0)))
          | Some _ | None -> None)
        (Absint.const_nets st))
    ~apply:(fun ctx site log ->
      match (site.R.site_comps, site.R.site_data) with
      | [ cid ], [ nid; vi ]
        when D.comp_opt ctx.R.design cid <> None
             && D.net_opt ctx.R.design nid <> None ->
          let v = vi = 1 in
          if
            output_net ctx (D.comp ctx.R.design cid) = Some nid
            && still_const ctx nid v
          then begin
            let cnet =
              Gate_comp.add_const ~log ctx.R.design ctx.R.set
                (if v then T.Vdd else T.Vss)
            in
            R.remove_comp_and_dangling ctx log cid;
            if D.net_opt ctx.R.design nid <> None then
              R.reroute ctx log ~signal:cnet ~old_net:nid;
            true
          end
          else false
      | _ -> false)

(* Remove a live component whose every output is masked on every path
   to an output port; its output net is tied low so the design stays
   driven (and constant-prop folds the consumers afterwards). *)
let prune_unobservable =
  R.make ~name:"absint-prune-unobservable" ~cls:R.Logic
    ~find:(fun ctx ->
      let st = analyze ctx in
      let ok = eligible ctx in
      List.filter_map
        (fun cid ->
          match D.comp_opt ctx.R.design cid with
          | Some c
            when ok cid && collapsible ctx c && output_net ctx c <> None ->
              Some
                (R.site ~data:[ cid ] ~comps:[]
                   (Printf.sprintf "prune unobservable %s" c.D.cname))
          | Some _ | None -> None)
        (Absint.unobservable_comps st))
    ~apply:(fun ctx site log ->
      match site.R.site_data with
      | [ cid ] when D.comp_opt ctx.R.design cid <> None -> (
          let c = D.comp ctx.R.design cid in
          match output_net ctx c with
          | Some nid when collapsible ctx c ->
              let st = analyze ctx in
              if
                Absint.comp_live st cid
                && not (Absint.comp_observable st cid)
              then begin
                R.remove_comp_and_dangling ctx log cid;
                if D.net_opt ctx.R.design nid <> None then begin
                  let cnet =
                    Gate_comp.add_const ~log ctx.R.design ctx.R.set T.Vss
                  in
                  R.reroute ctx log ~signal:cnet ~old_net:nid
                end;
                true
              end
              else false
          | Some _ | None -> false)
      | _ -> false)

let rules = [ const_collapse; prune_unobservable ]
