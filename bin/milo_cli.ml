(* The MILO command-line interface.

     milo compile  DESIGN.mil [-o OUT]        expand to generic macros
     milo map      DESIGN.mil -t ecl [-o OUT] compile + technology map
     milo optimize DESIGN.mil -t ecl --delay 6.5 [-o OUT]
                                              the full MILO flow
     milo run      DESIGN.mil ...             alias of optimize
     milo resume   JOURNAL [-o OUT]           continue an interrupted
                                              --journal run from its
                                              last committed checkpoint
     milo replay   JOURNAL [--json] [--trajectory TRAJ]
                                              re-execute a journal's
                                              trajectory under the full
                                              guard (exit 7 on
                                              divergence), cross-checking
                                              a recorded trajectory file
     milo profile  DESIGN.mil [-t ecl] [--json]
                                              flow under a tracer ->
                                              span-tree profile
     milo explain  DESIGN.mil [-t ecl] [--json]
                                              flow under the provenance
                                              recorder -> cost
                                              attribution, conservation,
                                              critical-path blame
     milo trajectory record DESIGN.mil [-t ecl] [-o TRAJ] [--journal J]
     milo trajectory dump   JOURNAL [-o TRAJ]
                                              record a run's trajectory /
                                              reconstruct one offline
                                              from a journal
     milo verify   A.mil B.mil                equivalence check (exit 7
                                              when not equivalent)
     milo stats    DESIGN.mil -t ecl          baseline statistics
     milo lint     DESIGN.mil [--json] [--strict]
                                              run the DRC passes
     milo analyze  DESIGN.mil [-t ecl] [--json] [--certify]
                                              abstract-interpretation
                                              facts (+ rule certificates)
     milo symbol   "reg bits=4 fns=LOAD controls=RST"
                                              render a component symbol

   DESIGN.mil uses the textual netlist format (see lib/netlist/parser.ml
   or any file written by `milo compile`). *)

open Cmdliner
module Diag = Milo_lint.Diagnostic

(* The one JSON string quoter for every --json emitter.  (OCaml's [%S]
   is not JSON: it renders non-printable bytes as decimal [\ddd]
   escapes, which JSON parsers reject.) *)
let json_quote s = "\"" ^ Diag.json_escape s ^ "\""

(* All front-end failures funnel through the diagnostic type so every
   command reports "file:line: error: message" uniformly. *)
let parse_fail ~file ?line fmt =
  Printf.ksprintf
    (fun msg ->
      let d = Diag.parse_error ~file ?line "%s" msg in
      prerr_endline (Diag.to_string d);
      exit 1)
    fmt

(* Runtime (post-parse) failures also render compiler-style
   "file: error: message" lines, with distinct exit codes so scripts can
   tell failure classes apart: 1 parse/lint, 3 unmappable design,
   4 invalid netlist edit, 5 bad argument (including an unusable
   journal), 6 degraded (partial) flow, 7 not equivalent (verify, and
   replay divergence), 8 interrupted (SIGINT/SIGTERM: the streamed
   trace is flushed and the journal is left at its last durable record,
   ready for `milo resume`). *)
let runtime_fail ~file ~code fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline
        (Diag.to_string
           (Diag.make ~rule:"error" ~severity:Diag.Error
              ~loc:(Diag.File { file; line = None })
              "%s" msg));
      exit code)
    fmt

let protect ~file f =
  match f () with
  | v -> v
  | exception Milo_techmap.Table_map.Unmappable u ->
      runtime_fail ~file ~code:3 "unmappable: %s"
        (Milo_techmap.Table_map.unmappable_to_string u)
  | exception Milo_netlist.Design.Error e ->
      runtime_fail ~file ~code:4 "%s" (Milo_netlist.Design.error_to_string e)
  | exception Invalid_argument msg -> runtime_fail ~file ~code:5 "%s" msg
  | exception Milo.Flow.Journal_error msg ->
      runtime_fail ~file ~code:5 "journal: %s" msg
  | exception Sys_error msg -> runtime_fail ~file ~code:1 "%s" msg

(* SIGINT/SIGTERM land on exit code 8 after flushing whatever streams
   durability depends on.  The journal needs no help — every record is
   flushed as it lands and checkpoints commit via rename — so the
   handler's job is the streaming trace channel and a resume hint. *)
let interrupt_flushers : (unit -> unit) list ref = ref []

let install_interrupt_handlers ~journal () =
  let handler _ =
    List.iter (fun f -> try f () with _ -> ()) !interrupt_flushers;
    (match journal with
    | Some path ->
        Printf.eprintf
          "interrupted: journal %s is durable; `milo resume %s` continues \
           the run\n"
          path path
    | None -> prerr_endline "interrupted");
    exit 8
  in
  Sys.set_signal Sys.sigint (Sys.Signal_handle handler);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle handler)

let read_design path =
  let vhdl =
    Filename.check_suffix path ".vhd" || Filename.check_suffix path ".vhdl"
  in
  if Filename.check_suffix path ".pla" then
    try Milo_pla.Pla.to_design ~name:(Filename.remove_extension (Filename.basename path))
          (Milo_pla.Pla.of_file path)
    with Milo_pla.Pla.Pla_error (line, msg) -> parse_fail ~file:path ~line "%s" msg
  else if Filename.check_suffix path ".eqn" then
    try Milo_pla.Equations.of_file path
    with Milo_pla.Equations.Equation_error (line, msg) ->
      parse_fail ~file:path ~line "%s" msg
  else if vhdl then
    try Milo_vhdl.Elaborate.design_of_file path with
    | Milo_vhdl.Parser.Parse_error (line, msg) ->
        parse_fail ~file:path ~line "%s" msg
    | Milo_vhdl.Lexer.Lex_error (line, msg) ->
        parse_fail ~file:path ~line "%s" msg
    | Milo_vhdl.Elaborate.Elaboration_error msg -> parse_fail ~file:path "%s" msg
  else
    try Milo_netlist.Parser.of_file path
    with Milo_netlist.Parser.Parse_error (line, msg) ->
      parse_fail ~file:path ~line "%s" msg

let write_design out design =
  match out with
  | None -> print_string (Milo_netlist.Writer.to_string design)
  | Some path ->
      let oc = open_out path in
      output_string oc (Milo_netlist.Writer.to_string design);
      close_out oc;
      Printf.printf "wrote %s (%s)\n" path (Milo_netlist.Writer.summary design)

let technology_of = function
  | "ecl" -> Milo.Flow.Ecl
  | "cmos" -> Milo.Flow.Cmos
  | other ->
      Printf.eprintf "unknown technology %s (ecl|cmos)\n" other;
      exit 1

(* --- arguments -------------------------------------------------------- *)

let design_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"DESIGN.mil")

let out_arg =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"OUT"
         ~doc:"Write the resulting netlist to $(docv).")

let tech_arg =
  Arg.(value & opt string "ecl" & info [ "t"; "technology" ] ~docv:"TECH"
         ~doc:"Target technology library: ecl or cmos.")

let delay_arg =
  Arg.(value & opt (some float) None & info [ "delay" ] ~docv:"NS"
         ~doc:"Required worst-path delay in nanoseconds.")

let area_arg =
  Arg.(value & opt (some float) None & info [ "area" ] ~docv:"CELLS"
         ~doc:"Area budget in cells.")

let power_arg =
  Arg.(value & opt (some float) None & info [ "power" ] ~docv:"MW"
         ~doc:"Power budget in milliwatts.")

let timeout_arg =
  Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECONDS"
         ~doc:"Wall-clock budget for the optimization searches; on \
               exhaustion the flow stops cleanly with the best design \
               found so far.")

let max_steps_arg =
  Arg.(value & opt (some int) None & info [ "max-steps" ] ~docv:"N"
         ~doc:"Maximum committed rule applications across all \
               optimization passes.")

let full_measure_arg =
  Arg.(value & flag
         & info [ "full-measure" ]
             ~doc:"Disable the incremental measurement engine: every \
                   candidate evaluation recomputes timing, area and \
                   power from scratch (slow; for cross-checking).")

let check_measure_arg =
  Arg.(value & flag
         & info [ "check-measure" ]
             ~doc:"Differential oracle: cross-check every incremental \
                   measurement against a full recompute and abort on \
                   divergence (debugging; very slow).")

let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Record a flow trace to $(docv): spans, rule/search \
               events and metrics.  JSONL streams as the run \
               progresses; the chrome format is written at the end.")

let trace_format_arg =
  Arg.(value & opt string "json" & info [ "trace-format" ] ~docv:"FORMAT"
         ~doc:"Trace file format: json (one JSON object per line) or \
               chrome (a trace_event file loadable in Perfetto or \
               chrome://tracing).")

let guard_arg =
  Arg.(value & opt string "sampled" & info [ "guard" ] ~docv:"TIER"
         ~doc:"Semantic guard tier: off, sampled (default; checks stage \
               outputs and a sample of rule applications) or full \
               (equivalence-check every stage and every rule \
               application).  A caught stage miscompile degrades the \
               flow; a caught rule miscompile is reverted and the rule \
               quarantined.")

let domains_arg =
  let default = max 1 (Domain.recommended_domain_count () - 1) in
  Arg.(value & opt int default & info [ "domains" ] ~docv:"N"
         ~doc:"Worker domains for parallel candidate evaluation \
               (default: cores - 1, at least 1).  1 runs the \
               supervised tasks inline; results are bit-identical \
               across every $(docv).  On hosts where a pool cannot be \
               constructed the run degrades to inline execution and \
               notes it.")

let journal_arg =
  Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE"
         ~doc:"Record a durable write-ahead journal of the run to \
               $(docv): the run header, every committed rule \
               application and a full design snapshot at every stage \
               checkpoint.  A run killed at any point leaves a journal \
               that $(b,milo resume) can continue and $(b,milo replay) \
               can re-execute.")

let guard_of ~file name =
  match Milo_guard.Guard.policy_of_string name with
  | Some p -> p
  | None ->
      runtime_fail ~file ~code:5 "unknown guard tier %s (off|sampled|full)"
        name

(* --- commands --------------------------------------------------------- *)

let compile_cmd =
  let run path out =
    protect ~file:path @@ fun () ->
    let design = read_design path in
    let db = Milo_compilers.Database.create () in
    let lib = Milo_library.Generic.get () in
    let expanded = Milo_compilers.Compile.expand_design db lib design in
    let flat = Milo_compilers.Database.flatten db expanded in
    write_design out flat;
    `Ok ()
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Expand microarchitecture components to generic macros.")
    Term.(ret (const run $ design_arg $ out_arg))

let map_cmd =
  let run path tech out =
    protect ~file:path @@ fun () ->
    let design = read_design path in
    let mapped, _ =
      Milo.Flow.human_baseline ~technology:(technology_of tech) design
    in
    write_design out mapped;
    `Ok ()
  in
  Cmd.v
    (Cmd.info "map" ~doc:"Compile and map onto a technology library (no optimization).")
    Term.(ret (const run $ design_arg $ tech_arg $ out_arg))

let optimize_run path tech delay area power timeout max_steps full_measure
    check_measure trace_file trace_format guard journal domains out =
  protect ~file:path @@ fun () ->
  install_interrupt_handlers ~journal ();
  let design = read_design path in
  let technology = technology_of tech in
  let guard = guard_of ~file:path guard in
  let constraints =
    Milo.Constraints.make ?required_delay:delay ?max_area:area
      ?max_power:power ()
  in
  let budget =
    match (timeout, max_steps) with
    | None, None -> None
    | _ -> Some (Milo_rules.Budget.make ?timeout ?max_steps ())
  in
  Milo_measure.Measure.set_debug_check check_measure;
  (* A JSONL trace streams into the file as the run progresses (so a
     crashed run keeps its prefix); the chrome format needs the whole
     trace and is written when the flow returns. *)
  let trace_ch = ref None in
  let trace =
    match trace_file with
    | None -> None
    | Some file ->
        let t = Milo_trace.Trace.create () in
        (match trace_format with
        | "json" ->
            let oc = open_out file in
            trace_ch := Some oc;
            interrupt_flushers := (fun () -> flush oc) :: !interrupt_flushers;
            Milo_trace.Trace.add_sink t (Milo_trace.Export.jsonl_sink oc)
        | "chrome" -> ()
        | other ->
            runtime_fail ~file:path ~code:5
              "unknown trace format %s (json|chrome)" other);
        Some t
  in
  let finish_trace () =
    match (trace, trace_file) with
    | Some t, Some file ->
        (match trace_format with
        | "chrome" -> Milo_trace.Export.save_chrome file t
        | _ -> ( match !trace_ch with Some oc -> close_out oc | None -> ()));
        Printf.eprintf "trace: wrote %s (%s)\n" file trace_format
    | _ -> ()
  in
  let human = Milo.Flow.baseline_stats ~technology design in
  Printf.printf "baseline: delay %.2f ns, area %.1f cells, power %.1f mW\n"
    human.Milo.Flow.delay human.Milo.Flow.area human.Milo.Flow.power;
  match
    Milo.Flow.run ~technology ~constraints ~incremental:(not full_measure)
      ?budget ?trace ~guard ?journal ~domains design
  with
  | Milo.Flow.Complete res ->
      finish_trace ();
      print_string (Milo.Report.summary res);
      (match out with
      | Some _ -> write_design out res.Milo.Flow.optimized
      | None -> ());
      `Ok ()
  | Milo.Flow.Partial p ->
      (* Degraded run: report the failure, keep the last good design.
         The trace was flushed by the flow, so it is written too. *)
      finish_trace ();
      prerr_string (Milo.Report.partial_summary p);
      (match out with
      | Some _ -> write_design out p.Milo.Flow.last_good.Milo.Flow.ck_design
      | None -> ());
      exit 6

let optimize_term =
  Term.(ret (const optimize_run $ design_arg $ tech_arg $ delay_arg $ area_arg
             $ power_arg $ timeout_arg $ max_steps_arg $ full_measure_arg
             $ check_measure_arg $ trace_arg $ trace_format_arg $ guard_arg
             $ journal_arg $ domains_arg $ out_arg))

let optimize_cmd =
  Cmd.v
    (Cmd.info "optimize" ~doc:"Run the full MILO flow against the given constraints.")
    optimize_term

let run_cmd =
  Cmd.v
    (Cmd.info "run" ~doc:"Alias of optimize: run the full MILO flow.")
    optimize_term

let resume_cmd =
  let journal_pos =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"JOURNAL")
  in
  let run path out =
    protect ~file:path @@ fun () ->
    install_interrupt_handlers ~journal:(Some path) ();
    match Milo.Flow.resume path with
    | Milo.Flow.Complete res ->
        print_string (Milo.Report.summary res);
        (match out with
        | Some _ -> write_design out res.Milo.Flow.optimized
        | None -> ());
        `Ok ()
    | Milo.Flow.Partial p ->
        prerr_string (Milo.Report.partial_summary p);
        (match out with
        | Some _ -> write_design out p.Milo.Flow.last_good.Milo.Flow.ck_design
        | None -> ());
        exit 6
  in
  Cmd.v
    (Cmd.info "resume"
       ~doc:"Continue an interrupted journaled run: recover the \
             journal's longest valid prefix, restore the last committed \
             checkpoint (design snapshot, remaining budget, semantic \
             guard state) and re-run only the stages after it.  The \
             resumed run re-journals into the same file, so it can \
             itself be interrupted and resumed again.  The result \
             matches the uninterrupted run's exactly.  A journal \
             without a committed checkpoint has nothing to resume \
             (exit 5) — re-run the flow from the input design.")
    Term.(ret (const run $ journal_pos $ out_arg))

let replay_cmd =
  let journal_pos =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"JOURNAL")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.")
  in
  let traj_arg =
    Arg.(value & opt (some file) None
         & info [ "trajectory" ] ~docv:"TRAJ"
             ~doc:"Also cross-check this recorded trajectory (JSONL, \
                   from $(b,milo trajectory record)) against the \
                   journal, record for record.  Any mismatch exits 7.")
  in
  let quote = json_quote in
  let run path traj json =
    protect ~file:path @@ fun () ->
    let rep = Milo.Flow.replay path in
    let traj_mismatches =
      match traj with
      | None -> []
      | Some tf ->
          Milo_provenance.Trajectory.crosscheck ~journal:path
            (Milo_provenance.Trajectory.load tf)
    in
    let divergence_line (d : Milo.Flow.divergence) =
      Printf.sprintf "record %d [%s/%s]%s: %s" d.Milo.Flow.div_record
        d.Milo.Flow.div_stage d.Milo.Flow.div_kind
        (match d.Milo.Flow.div_label with
        | None -> ""
        | Some l -> " " ^ l)
        d.Milo.Flow.div_detail
    in
    if json then
      Printf.printf
        "{\"journal\": %s, \"records\": %d, \"truncated_bytes\": %d, \
         \"deltas\": %d, \"checks\": %d, \"finished\": %b, \
         \"divergences\": [%s]%s}\n"
        (quote path) rep.Milo.Flow.rep_records
        rep.Milo.Flow.rep_truncated_bytes rep.Milo.Flow.rep_deltas
        rep.Milo.Flow.rep_checks rep.Milo.Flow.rep_finished
        (String.concat ", "
           (List.map
              (fun (d : Milo.Flow.divergence) ->
                Printf.sprintf
                  "{\"record\": %d, \"stage\": %s, \"label\": %s, \
                   \"kind\": %s, \"detail\": %s}"
                  d.Milo.Flow.div_record (quote d.Milo.Flow.div_stage)
                  (match d.Milo.Flow.div_label with
                  | None -> "null"
                  | Some l -> quote l)
                  (quote d.Milo.Flow.div_kind) (quote d.Milo.Flow.div_detail))
              rep.Milo.Flow.rep_divergences))
        (match traj with
        | None -> ""
        | Some tf ->
            Printf.sprintf ", \"trajectory\": %s, \"trajectory_mismatches\": [%s]"
              (quote tf)
              (String.concat ", "
                 (List.map
                    (fun (m : Milo_provenance.Trajectory.mismatch) ->
                      Printf.sprintf "{\"record\": %d, \"detail\": %s}"
                        m.Milo_provenance.Trajectory.mis_index
                        (quote m.Milo_provenance.Trajectory.mis_detail))
                    traj_mismatches)))
    else begin
      Printf.printf
        "replay %s: %d records (%d bytes torn), %d rule applications \
         re-executed, %d equivalence checks, %s\n"
        path rep.Milo.Flow.rep_records rep.Milo.Flow.rep_truncated_bytes
        rep.Milo.Flow.rep_deltas rep.Milo.Flow.rep_checks
        (if rep.Milo.Flow.rep_finished then "run finished cleanly"
         else "run did not finish");
      List.iter
        (fun d -> print_endline ("  divergence: " ^ divergence_line d))
        rep.Milo.Flow.rep_divergences;
      if rep.Milo.Flow.rep_divergences = [] then
        print_endline "no divergences: the trajectory re-executes exactly";
      (match traj with
      | None -> ()
      | Some tf ->
          List.iter
            (fun (m : Milo_provenance.Trajectory.mismatch) ->
              Printf.printf "  trajectory mismatch at record %d: %s\n"
                m.Milo_provenance.Trajectory.mis_index
                m.Milo_provenance.Trajectory.mis_detail)
            traj_mismatches;
          if traj_mismatches = [] then
            Printf.printf
              "trajectory %s cross-checks against the journal exactly\n" tf)
    end;
    if rep.Milo.Flow.rep_divergences <> [] || traj_mismatches <> [] then exit 7
    else `Ok ()
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Deterministically re-execute a journal's recorded \
             trajectory: adopt the design-producing snapshots, re-apply \
             every recorded rule application, and equivalence-check \
             each one with the semantic guard in full mode.  Exits 7 \
             when the trajectory diverges from the record.")
    Term.(ret (const run $ journal_pos $ traj_arg $ json_arg))

(* Finite JSON number (JSON has no inf/nan; the quantities here are
   finite on any sane run, so clamping the escape hatch to 0 beats
   emitting an unparsable token). *)
let json_num v = if Float.is_finite v then Printf.sprintf "%.12g" v else "0"

(* The whole profile as one JSON object with keys in sorted order, so
   byte-level diffs of two profiles line up. *)
let profile_json path t =
  let module Profile = Milo_trace.Profile in
  let rec span_json (n : Profile.node) =
    Printf.sprintf "{\"children\": [%s], \"name\": %s, \"self\": %s, \"total\": %s}"
      (String.concat ", " (List.map span_json n.Profile.children))
      (json_quote n.Profile.span.Milo_trace.Trace.name)
      (json_num n.Profile.self) (json_num n.Profile.total)
  in
  let rule_json (name, (s : Milo_trace.Trace.rule_stat)) =
    Printf.sprintf
      "{\"applies\": %d, \"evals\": %d, \"gain\": %s, \"name\": %s, \
       \"refusals\": %d, \"rollbacks\": %d, \"time_s\": %s}"
      s.Milo_trace.Trace.applies s.Milo_trace.Trace.evals
      (json_num s.Milo_trace.Trace.gain) (json_quote name)
      s.Milo_trace.Trace.refusals s.Milo_trace.Trace.rollbacks
      (json_num s.Milo_trace.Trace.time_s)
  in
  let m = Milo_trace.Trace.metrics t in
  Printf.sprintf
    "{\"counters\": {%s}, \"design\": %s, \"gauges\": {%s}, \"rules\": [%s], \
     \"spans\": [%s]}"
    (String.concat ", "
       (List.map
          (fun (k, v) -> Printf.sprintf "%s: %d" (json_quote k) v)
          (Milo_trace.Metrics.counters m)))
    (json_quote path)
    (String.concat ", "
       (List.map
          (fun (k, v) -> Printf.sprintf "%s: %s" (json_quote k) (json_num v))
          (Milo_trace.Metrics.gauges m)))
    (String.concat ", "
       (List.map rule_json (Milo_trace.Profile.hot_rules_by_time t)))
    (String.concat ", " (List.map span_json (Milo_trace.Profile.tree t)))

let profile_cmd =
  let json_arg =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit the profile as JSON (span tree, per-rule \
                   attribution, metric registry) instead of text.")
  in
  let run path tech delay timeout max_steps guard json =
    protect ~file:path @@ fun () ->
    let design = read_design path in
    let technology = technology_of tech in
    let guard = guard_of ~file:path guard in
    let constraints = Milo.Constraints.make ?required_delay:delay () in
    let budget =
      match (timeout, max_steps) with
      | None, None -> None
      | _ -> Some (Milo_rules.Budget.make ?timeout ?max_steps ())
    in
    let t = Milo_trace.Trace.create () in
    match
      Milo.Flow.run ~technology ~constraints ?budget ~trace:t ~guard design
    with
    | Milo.Flow.Complete res ->
        if json then print_endline (profile_json path t)
        else begin
          print_string (Milo_trace.Profile.render t);
          let g = res.Milo.Flow.guard_stats in
          if Milo_guard.Guard.stats_active g then
            Format.printf "semantic guard: %a@." Milo_guard.Guard.pp_stats g
        end;
        `Ok ()
    | Milo.Flow.Partial p ->
        (* The profile up to the failure is still printed — that is the
           point of profiling a run that went wrong. *)
        if json then print_endline (profile_json path t)
        else print_string (Milo_trace.Profile.render t);
        prerr_string (Milo.Report.partial_summary p);
        exit 6
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Run the flow under a tracer and print the span-tree profile \
             with per-stage self-times and per-rule attribution.")
    Term.(ret (const run $ design_arg $ tech_arg $ delay_arg $ timeout_arg
               $ max_steps_arg $ guard_arg $ json_arg))

let explain_cmd =
  let module P = Milo_provenance.Provenance in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit the attribution report as JSON instead of text.")
  in
  let run path tech delay timeout max_steps guard domains json =
    protect ~file:path @@ fun () ->
    let design = read_design path in
    let technology = technology_of tech in
    let guard = guard_of ~file:path guard in
    let constraints = Milo.Constraints.make ?required_delay:delay () in
    let budget =
      match (timeout, max_steps) with
      | None, None -> None
      | _ -> Some (Milo_rules.Budget.make ?timeout ?max_steps ())
    in
    let t = Milo_trace.Trace.create () in
    let p = P.create () in
    match
      Milo.Flow.run ~technology ~constraints ?budget ~trace:t ~guard
        ~provenance:p ~domains design
    with
    | Milo.Flow.Partial pp ->
        prerr_string (Milo.Report.partial_summary pp);
        exit 6
    | Milo.Flow.Complete res ->
        let optimized = res.Milo.Flow.optimized in
        let env name =
          Milo_library.Technology.find
            (Milo.Flow.target_of technology).Milo_techmap.Table_map.tech name
        in
        let blame =
          match
            Milo_timing.Sta.critical_path
              (Milo_timing.Sta.analyze env optimized)
          with
          | None -> None
          | Some path -> Some (path, P.blame p path)
        in
        let top = Milo_trace.Profile.hot_rules_by_gain_rate t in
        let label_of = function None -> "(unlabeled)" | Some l -> l in
        if json then begin
          let row_json (r : P.row) =
            Printf.sprintf
              "{\"applies\": %d, \"delay\": %s, \"area\": %s, \
               \"label\": %s, \"measured\": %d, \"power\": %s, \
               \"stage\": %s}"
              r.P.row_applies (json_num r.P.row_delay) (json_num r.P.row_area)
              (json_quote r.P.row_label) r.P.row_measured
              (json_num r.P.row_power) (json_quote r.P.row_stage)
          in
          let conservation_json (c : P.conservation) =
            Printf.sprintf
              "{\"breaks\": %d, \"commits\": %d, \"measured\": %d, \
               \"residual_area\": %s, \"residual_delay\": %s, \
               \"residual_power\": %s, \"stage\": %s}"
              c.P.co_breaks c.P.co_commits c.P.co_measured
              (json_num c.P.co_residual.Milo_trace.Trace.area)
              (json_num c.P.co_residual.Milo_trace.Trace.delay)
              (json_num c.P.co_residual.Milo_trace.Trace.power)
              (json_quote c.P.co_stage)
          in
          let hop_json ((h : Milo_timing.Sta.hop), tag) =
            Printf.sprintf
              "{\"comp\": %d, \"kind\": %s, \"label\": %s, \"stage\": %s, \
               \"step\": %s}"
              h.Milo_timing.Sta.comp
              (json_quote
                 (Milo_netlist.Hashcons.kind_spec
                    (Milo_netlist.Design.comp optimized
                       h.Milo_timing.Sta.comp)
                      .Milo_netlist.Design.kind))
              (match tag with
              | Some tg -> json_quote (label_of tg.P.tag_label)
              | None -> "null")
              (match tag with
              | Some tg -> json_quote tg.P.tag_stage
              | None -> "null")
              (match tag with
              | Some tg -> string_of_int tg.P.tag_step
              | None -> "null")
          in
          let rule_json (name, (s : Milo_trace.Trace.rule_stat)) =
            Printf.sprintf
              "{\"applies\": %d, \"gain\": %s, \"gain_per_ms\": %s, \
               \"name\": %s, \"time_s\": %s}"
              s.Milo_trace.Trace.applies (json_num s.Milo_trace.Trace.gain)
              (json_num
                 (if s.Milo_trace.Trace.time_s > 0.0 then
                    s.Milo_trace.Trace.gain
                    /. (s.Milo_trace.Trace.time_s *. 1000.0)
                  else 0.0))
              (json_quote name) (json_num s.Milo_trace.Trace.time_s)
          in
          Printf.printf
            "{\"attribution\": [%s], \"conservation\": [%s], \
             \"critical_path\": %s, \"design\": %s, \"top_gain_per_ms\": \
             [%s]}\n"
            (String.concat ", " (List.map row_json (P.ledger p)))
            (String.concat ", "
               (List.map conservation_json (P.conservation p)))
            (match blame with
            | None -> "null"
            | Some (path, hops) ->
                Printf.sprintf "{\"delay\": %s, \"hops\": [%s]}"
                  (json_num path.Milo_timing.Sta.path_delay)
                  (String.concat ", " (List.map hop_json hops)))
            (json_quote path)
            (String.concat ", " (List.map rule_json top))
        end
        else begin
          Printf.printf "explain %s (%s)\n" path
            (Milo.Flow.technology_name technology);
          Printf.printf "\nattribution (per stage/rule):\n";
          Printf.printf "  %-9s %-24s %7s %5s %9s %9s %9s\n" "stage" "rule"
            "applies" "meas" "d.delay" "d.area" "d.power";
          List.iter
            (fun (r : P.row) ->
              Printf.printf "  %-9s %-24s %7d %5d %+9.3f %+9.2f %+9.2f\n"
                r.P.row_stage r.P.row_label r.P.row_applies r.P.row_measured
                r.P.row_delay r.P.row_area r.P.row_power)
            (P.ledger p);
          Printf.printf "\nconservation (attributed deltas vs end-to-end):\n";
          List.iter
            (fun (c : P.conservation) ->
              Printf.printf
                "  %-9s %d commits, %d measured, %d breaks, residual \
                 %.2g/%.2g/%.2g  [%s]\n"
                c.P.co_stage c.P.co_commits c.P.co_measured c.P.co_breaks
                c.P.co_residual.Milo_trace.Trace.delay
                c.P.co_residual.Milo_trace.Trace.area
                c.P.co_residual.Milo_trace.Trace.power
                (if c.P.co_breaks = 0 then "ok" else "BROKEN"))
            (P.conservation p);
          (match blame with
          | None -> Printf.printf "\ncritical path: none (no timed hops)\n"
          | Some (path, hops) ->
              Printf.printf "\ncritical path (%.2f ns, endpoint %s):\n"
                path.Milo_timing.Sta.path_delay
                (match path.Milo_timing.Sta.path_endpoint with
                | Milo_timing.Sta.Ep_port p -> p
                | Milo_timing.Sta.Ep_seq_pin (c, pin) ->
                    Printf.sprintf "comp %d pin %s" c pin);
              List.iter
                (fun ((h : Milo_timing.Sta.hop), tag) ->
                  let c =
                    Milo_netlist.Design.comp optimized h.Milo_timing.Sta.comp
                  in
                  Printf.printf "  comp %-4d %-12s %s\n"
                    h.Milo_timing.Sta.comp
                    (Milo_netlist.Hashcons.kind_spec
                       c.Milo_netlist.Design.kind)
                    (match tag with
                    | Some tg ->
                        Printf.sprintf "<- %s step %d (%s)"
                          (label_of tg.P.tag_label) tg.P.tag_step
                          tg.P.tag_stage
                    | None -> "<- unattributed (survives mapping)"))
                hops);
          Printf.printf "\ntop rules by gain per millisecond:\n";
          if top = [] then Printf.printf "  (no kept rule applications)\n"
          else
            List.iteri
              (fun i (name, (s : Milo_trace.Trace.rule_stat)) ->
                if i < 5 then
                  Printf.printf "  %-24s %d applies, gain %.3f, %.3f/ms\n"
                    name s.Milo_trace.Trace.applies s.Milo_trace.Trace.gain
                    (if s.Milo_trace.Trace.time_s > 0.0 then
                       s.Milo_trace.Trace.gain
                       /. (s.Milo_trace.Trace.time_s *. 1000.0)
                     else 0.0))
              top
        end;
        `Ok ()
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Run the flow under the provenance recorder and report where \
             the cost went: exact per-stage/per-rule delay/area/power \
             attribution (with its conservation check), critical-path \
             blame (which rule last touched each hop of the final \
             critical path), and the rules with the best cost \
             improvement per millisecond spent.")
    Term.(ret (const run $ design_arg $ tech_arg $ delay_arg $ timeout_arg
               $ max_steps_arg $ guard_arg $ domains_arg $ json_arg))

let trajectory_cmd =
  let mode_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"MODE"
             ~doc:"$(b,record) runs the flow with the recorder and \
                   streams the trajectory; $(b,dump) reconstructs one \
                   offline from a journal.")
  in
  let path_pos =
    Arg.(required & pos 1 (some file) None
         & info [] ~docv:"PATH"
             ~doc:"$(b,record): the input DESIGN.mil.  $(b,dump): the \
                   journal file.")
  in
  let traj_out_arg =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"TRAJ"
             ~doc:"Write the trajectory JSONL here (default stdout).")
  in
  let run mode path tech delay timeout max_steps guard journal out =
    protect ~file:path @@ fun () ->
    let with_out f =
      match out with
      | None -> f stdout
      | Some file ->
          let oc = open_out file in
          Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)
    in
    match mode with
    | "dump" ->
        let p = Milo_provenance.Trajectory.of_journal path in
        let events = Milo_provenance.Provenance.events p in
        if events = [] then
          runtime_fail ~file:path ~code:5
            "journal has no recoverable records to dump";
        with_out (fun oc ->
            List.iter
              (fun e ->
                output_string oc
                  (Milo_provenance.Trajectory.line_of_event e);
                output_char oc '\n')
              events;
            flush oc);
        (match out with
        | Some file ->
            Printf.eprintf "trajectory: wrote %d events to %s\n"
              (List.length events) file
        | None -> ());
        `Ok ()
    | "record" ->
        install_interrupt_handlers ~journal ();
        let design = read_design path in
        let technology = technology_of tech in
        let guard = guard_of ~file:path guard in
        let constraints = Milo.Constraints.make ?required_delay:delay () in
        let budget =
          match (timeout, max_steps) with
          | None, None -> None
          | _ -> Some (Milo_rules.Budget.make ?timeout ?max_steps ())
        in
        let p = Milo_provenance.Provenance.create () in
        with_out (fun oc ->
            (* Streamed, not saved at the end: a crashed run keeps its
               prefix, mirroring the journal discipline. *)
            Milo_provenance.Provenance.add_sink p
              (Milo_provenance.Trajectory.sink oc);
            interrupt_flushers := (fun () -> flush oc) :: !interrupt_flushers;
            match
              Milo.Flow.run ~technology ~constraints ?budget ~guard ?journal
                ~provenance:p design
            with
            | Milo.Flow.Complete _ ->
                flush oc;
                Printf.eprintf "trajectory: recorded %d events\n"
                  (List.length (Milo_provenance.Provenance.events p));
                `Ok ()
            | Milo.Flow.Partial pp ->
                flush oc;
                prerr_string (Milo.Report.partial_summary pp);
                exit 6)
    | other ->
        runtime_fail ~file:path ~code:5
          "unknown trajectory mode %s (record|dump)" other
  in
  Cmd.v
    (Cmd.info "trajectory"
       ~doc:"Record an optimization trajectory (the provenance event \
             stream, one JSON object per line, mirroring the journal \
             record for record) or dump one reconstructed offline from \
             a journal — including a journal stitched across resume.  \
             Cross-check a recorded trajectory against its journal with \
             $(b,milo replay --trajectory).")
    Term.(ret (const run $ mode_arg $ path_pos $ tech_arg $ delay_arg
               $ timeout_arg $ max_steps_arg $ guard_arg $ journal_arg
               $ traj_out_arg))

let verify_cmd =
  let design_a =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"A.mil")
  in
  let design_b =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"B.mil")
  in
  let vectors_arg =
    Arg.(value & opt int 512 & info [ "vectors" ] ~docv:"N"
           ~doc:"Random input vectors when the design is too wide for \
                 the exhaustive sweep.")
  in
  let cycles_arg =
    Arg.(value & opt int 256 & info [ "cycles" ] ~docv:"N"
           ~doc:"Lock-step cycles per run for sequential designs.")
  in
  let seed_arg =
    Arg.(value & opt int 0x5eed & info [ "seed" ] ~docv:"SEED"
           ~doc:"Random seed for vector generation.")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the verdict as JSON.")
  in
  let quote = json_quote in
  let run a b vectors cycles seed json =
    protect ~file:a @@ fun () ->
    let d1 = read_design a and d2 = read_design b in
    let techs =
      [
        Milo_library.Generic.get ();
        (Milo.Flow.target_of Milo.Flow.Ecl).Milo_techmap.Table_map.tech;
        (Milo.Flow.target_of Milo.Flow.Cmos).Milo_techmap.Table_map.tech;
      ]
    in
    let env = Milo_sim.Simulator.env_of_techs techs in
    let params =
      { Milo_guard.Guard.full_params with vectors; cycles; seed }
    in
    match
      Milo_guard.Guard.check ~params ~is_seq:(Milo.Flow.seq_classifier techs)
        env d1 env d2
    with
    | None ->
        if json then
          Printf.printf "{\"equivalent\": true, \"a\": %s, \"b\": %s}\n"
            (quote a) (quote b)
        else Printf.printf "equivalent: %s == %s\n" a b;
        `Ok ()
    | Some div ->
        if json then
          Printf.printf
            "{\"equivalent\": false, \"a\": %s, \"b\": %s, \"ports\": [%s], \
             \"cycle\": %s, \"inputs\": {%s}, \"cone_inputs\": [%s], \
             \"cone_comps\": %d}\n"
            (quote a) (quote b)
            (String.concat ", "
               (List.map quote div.Milo_guard.Guard.div_ports))
            (match div.Milo_guard.Guard.div_cycle with
            | None -> "null"
            | Some c -> string_of_int c)
            (String.concat ", "
               (List.map
                  (fun (p, v) ->
                    Printf.sprintf "%s: %b" (quote p) v)
                  div.Milo_guard.Guard.div_inputs))
            (String.concat ", "
               (List.map quote div.Milo_guard.Guard.div_cone_inputs))
            div.Milo_guard.Guard.div_cone_comps
        else
          Printf.printf "NOT equivalent: %s\n"
            (Milo_guard.Guard.describe div);
        exit 7
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Simulation-based equivalence check of two designs on their \
             shared port interface: exhaustive for small input counts, \
             random-vector (and lock-step sequential) otherwise.  The \
             counterexample is delta-debugged to a minimal vector and \
             localized to the diverging output cone.  Exits 7 when the \
             designs are not equivalent; a port-interface mismatch is a \
             usage error (exit 5).")
    Term.(ret (const run $ design_a $ design_b $ vectors_arg $ cycles_arg
               $ seed_arg $ json_arg))

let stats_cmd =
  let run path tech =
    protect ~file:path @@ fun () ->
    let design = read_design path in
    let s = Milo.Flow.baseline_stats ~technology:(technology_of tech) design in
    Printf.printf
      "delay %.2f ns\narea %.1f cells\npower %.1f mW\ngates %d\ncomponents %d\n"
      s.Milo.Flow.delay s.Milo.Flow.area s.Milo.Flow.power s.Milo.Flow.gates
      s.Milo.Flow.comps;
    `Ok ()
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Baseline (compile + map, unoptimized) statistics.")
    Term.(ret (const run $ design_arg $ tech_arg))

let lint_cmd =
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.")
  in
  let strict_arg =
    Arg.(value & flag
           & info [ "strict" ]
               ~doc:"Exit non-zero on warnings as well as errors.")
  in
  let rules_arg =
    Arg.(value & opt (some string) None
           & info [ "rules" ] ~docv:"R1,R2"
               ~doc:"Comma-separated subset of passes to run (default: all).")
  in
  let run path json strict rules =
    protect ~file:path @@ fun () ->
    let design = read_design path in
    let techs =
      [
        Milo_library.Generic.get ();
        (Milo.Flow.target_of Milo.Flow.Ecl).Milo_techmap.Table_map.tech;
        (Milo.Flow.target_of Milo.Flow.Cmos).Milo_techmap.Table_map.tech;
      ]
    in
    let db = Milo_compilers.Database.create () in
    let resolve = Milo_compilers.Database.resolver db techs in
    let is_sequential = Milo.Flow.seq_classifier techs in
    let rules = Option.map (String.split_on_char ',') rules in
    let diags =
      try Milo_lint.Lint.run ~resolve ~is_sequential ?rules design
      with Invalid_argument msg -> parse_fail ~file:path "%s" msg
    in
    let report =
      {
        Milo_lint.Lint.design_name = Milo_netlist.Design.name design;
        stage = None;
        diags;
      }
    in
    if json then print_string (Milo_lint.Lint.report_to_json report)
    else print_string (Milo_lint.Lint.report_to_string report);
    let blocking =
      if strict then List.exists (fun d -> d.Diag.severity <> Diag.Info) diags
      else Milo_lint.Lint.errors diags <> []
    in
    if blocking then exit 1 else `Ok ()
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Run the netlist DRC passes (drivers, loops, floating pins, \
             references) and report findings.")
    Term.(ret (const run $ design_arg $ json_arg $ strict_arg $ rules_arg))

let analyze_cmd =
  let json_arg =
    Arg.(value & flag
           & info [ "json" ]
               ~doc:"Emit the facts (and certificates) as one JSON object.")
  in
  let certify_arg =
    Arg.(value & flag
           & info [ "certify" ]
               ~doc:"Also statically certify the logic-level optimizer \
                     rules against the target technology and print the \
                     certificate table.")
  in
  let run path tech json certify =
    protect ~file:path @@ fun () ->
    let design = read_design path in
    let technology = technology_of tech in
    let target = Milo.Flow.target_of technology in
    (* Facts are computed over the mapped (baseline) design: that is
       the representation the optimizer rules — and their certificates —
       operate on. *)
    let mapped, db = Milo.Flow.human_baseline ~technology design in
    let techs =
      [ target.Milo_techmap.Table_map.tech; Milo_library.Generic.get () ]
    in
    let st =
      Milo_absint.Absint.analyze
        ~resolve:(Milo_compilers.Database.resolver db techs)
        (Milo_absint.Absint.env_of_techs techs)
        mapped
    in
    let name = Milo_netlist.Design.name design in
    let diags = Milo_absint.Lint_facts.all st in
    let certs =
      if certify then
        Milo_absint.Certify.certify_rules target
          Milo_critic.Critic.all_logic_level
      else []
    in
    if json then begin
      let report =
        { Milo_lint.Lint.design_name = name; stage = Some "analysis"; diags }
      in
      Printf.printf
        "{\"summary\": %s, \"report\": %s, \"certificates\": [%s]}\n"
        (Milo_absint.Absint.summary_to_json name
           (Milo_absint.Absint.summary st))
        (String.trim (Milo_lint.Lint.report_to_json report))
        (String.concat ", "
           (List.map Milo_absint.Certify.cert_to_json certs))
    end
    else begin
      Format.printf "%s: %a@." name Milo_absint.Absint.pp_summary
        (Milo_absint.Absint.summary st);
      List.iter (fun d -> print_endline ("  " ^ Diag.to_string d)) diags;
      if certify then begin
        print_endline "certificates:";
        List.iter
          (fun c ->
            Format.printf "  %a@." Milo_absint.Certify.pp_certificate c)
          certs
      end
    end;
    `Ok ()
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Abstract interpretation of the mapped design: proved-constant \
             nets, dead and unobservable logic, stuck and floating pins, \
             multi-driven nets.  With $(b,--certify), also prove each \
             logic-level optimizer rule equivalence-preserving over the \
             certification corpus and print the verdicts.")
    Term.(ret (const run $ design_arg $ tech_arg $ json_arg $ certify_arg))

let symbol_cmd =
  let spec_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"KINDSPEC")
  in
  let run spec =
    let text = Printf.sprintf "design sym\ncomp x %s\n" spec in
    match Milo_netlist.Parser.of_string text with
    | exception Milo_netlist.Parser.Parse_error (_, msg) ->
        Printf.eprintf "bad component spec: %s\n" msg;
        `Error (false, msg)
    | d ->
        let c = Milo_netlist.Design.find_comp d "x" in
        print_string
          (Milo_compilers.Symbol.render
             (Milo_compilers.Symbol.generate c.Milo_netlist.Design.kind));
        `Ok ()
  in
  Cmd.v
    (Cmd.info "symbol"
       ~doc:"Render the schematic symbol for a component spec, e.g. \
             'reg bits=4 fns=LOAD controls=RST'.")
    Term.(ret (const run $ spec_arg))

let () =
  let doc = "MILO: a microarchitecture and logic optimizer" in
  let info = Cmd.info "milo" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            compile_cmd;
            map_cmd;
            optimize_cmd;
            run_cmd;
            resume_cmd;
            replay_cmd;
            profile_cmd;
            explain_cmd;
            trajectory_cmd;
            verify_cmd;
            stats_cmd;
            lint_cmd;
            analyze_cmd;
            symbol_cmd;
          ]))
